//! Runtime invariant auditing — "paranoid mode".
//!
//! A long simulation can go wrong in ways that neither panic nor fail a
//! test: a lost completion quietly deflates the sample pool, a NaN poisons
//! a running mean, an event feedback loop spins forever at one timestamp.
//! The auditor rides along the hot loop behind one cheap branch and checks,
//! every [`AuditConfig::check_interval_events`] events:
//!
//! - **Conservation** — every injected job is accounted for: completed on
//!   some server or still in the system (and, under fault injection, the
//!   request ledger `goodput + timed_out + in_flight == admitted`), plus a
//!   cross-check of the auditor's own completion count against the servers'
//!   `completed_jobs` truth, which catches dropped completions that leave
//!   the ledger itself balanced.
//! - **Energy/residency** — per-server integrated energy never decreases,
//!   never exceeds `peak_watts × simulated time`, and idle/nap/utilization/
//!   failed residency fractions stay in `[0, 1]` with `nap ≤ idle`.
//! - **Little's law** (non-fault runs) — the time-averaged number in
//!   system is compared against `λ·W` at finalization; a mismatch beyond
//!   tolerance is reported as a *warning*, not a violation, because both
//!   sides are estimates.
//!
//! Every observation entering the statistics engine is additionally checked
//! finite and non-negative *before* it can poison an estimator. Progress
//! pathologies (livelock, event storm, time regression) are detected by a
//! [`ProgressGuard`] the runners thread through [`bighouse_des::Engine::run_guarded`];
//! its violations land in the same [`AuditReport`].
//!
//! The auditor is **purely observational**: it consumes no randomness and
//! never reorders events, so a run with auditing on produces bit-identical
//! estimates to the same seed with auditing off (it can only end *earlier*,
//! on a violation).

use serde::{Deserialize, Serialize};

use bighouse_des::{ProgressGuard, ProgressViolation, Time};
use bighouse_models::Server;

/// Tuning knobs for the runtime invariant auditor.
///
/// The defaults are deliberately loose: they flag only genuine accounting
/// or progress bugs, never a healthy-but-extreme workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Events between invariant sweeps (conservation, energy, residency,
    /// Little's-law sampling). Observation tripwires run on every single
    /// observation regardless.
    pub check_interval_events: u64,
    /// Consecutive same-timestamp events tolerated before the livelock
    /// breaker trips.
    pub stall_limit_events: u64,
    /// Event-rate budget in events per simulated second; exceeding it over
    /// a full window trips the event-storm breaker.
    pub storm_budget_events_per_sim_second: f64,
    /// Window, in events, over which the storm budget is evaluated.
    pub storm_window_events: u64,
    /// Relative tolerance of the Little's-law probe (`|L − λW| / λW`).
    pub littles_law_tolerance: f64,
    /// Relative slack on the energy upper bound (`peak × elapsed`).
    pub energy_tolerance: f64,
}

impl AuditConfig {
    /// Default events between invariant sweeps.
    pub const DEFAULT_CHECK_INTERVAL: u64 = 4_096;
    /// Default Little's-law relative tolerance. Both sides of `L = λW` are
    /// sampled estimates, so the probe is a sanity band, not an equality.
    pub const DEFAULT_LITTLES_LAW_TOLERANCE: f64 = 0.25;
    /// Default relative slack on the energy upper bound.
    pub const DEFAULT_ENERGY_TOLERANCE: f64 = 1e-6;

    /// Builds the [`ProgressGuard`] configured by this audit.
    #[must_use]
    pub fn progress_guard(&self) -> ProgressGuard {
        ProgressGuard::new()
            .with_stall_limit(self.stall_limit_events)
            .with_storm_budget(
                self.storm_budget_events_per_sim_second,
                self.storm_window_events,
            )
    }

    fn check_interval(&self) -> u64 {
        self.check_interval_events.max(1)
    }
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            check_interval_events: Self::DEFAULT_CHECK_INTERVAL,
            stall_limit_events: ProgressGuard::DEFAULT_STALL_LIMIT,
            storm_budget_events_per_sim_second: ProgressGuard::DEFAULT_STORM_BUDGET,
            storm_window_events: ProgressGuard::DEFAULT_STORM_WINDOW,
            littles_law_tolerance: Self::DEFAULT_LITTLES_LAW_TOLERANCE,
            energy_tolerance: Self::DEFAULT_ENERGY_TOLERANCE,
        }
    }
}

/// One invariant the auditor found broken. Violations are hard failures:
/// the run stops and reports instead of converging on corrupt data.
///
/// Floating-point payloads are carried as strings because NaN and infinity
/// — precisely the values the tripwires exist to catch — do not survive a
/// JSON round trip as numbers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditViolation {
    /// The tracked-request ledger failed to balance:
    /// `goodput + timed_out + in_flight` must equal `admitted`.
    RequestLedger {
        /// Requests admitted to the cluster.
        admitted: u64,
        /// Requests that completed within their timeout budget.
        goodput: u64,
        /// Requests dropped after exhausting retries.
        timed_out: u64,
        /// Requests still tracked in flight.
        in_flight: u64,
    },
    /// The shed ledger failed to balance: every offered arrival must be
    /// either admitted or shed (`admitted + shed == offered`).
    ShedConservation {
        /// Arrivals offered to the cluster.
        offered: u64,
        /// Arrivals admitted past admission control and shedding.
        admitted: u64,
        /// Arrivals shed at the front door.
        shed: u64,
    },
    /// Job conservation failed: every injected job must be completed on
    /// some server or still in the system.
    JobConservation {
        /// Jobs injected so far.
        injected: u64,
        /// Jobs completed across all servers.
        completed: u64,
        /// Jobs queued or running across all servers.
        in_system: u64,
    },
    /// The servers' completed-job count disagrees with the number of
    /// completions the simulation actually processed — a completion was
    /// dropped (or double-delivered) between a server and the statistics.
    CompletionMismatch {
        /// Completions according to the servers.
        server_completed: u64,
        /// Completions the simulation processed.
        observed: u64,
    },
    /// A NaN or infinite value was about to enter a metric.
    NonFiniteObservation {
        /// The metric that would have been poisoned.
        metric: String,
        /// The offending value, rendered as text.
        value: String,
    },
    /// A negative value was about to enter a metric that must be
    /// non-negative (times, watts, levels).
    NegativeObservation {
        /// The metric that would have been poisoned.
        metric: String,
        /// The offending value, rendered as text.
        value: String,
    },
    /// A server's integrated energy decreased between sweeps.
    EnergyRegression {
        /// The server whose energy ran backwards.
        server: usize,
        /// Energy at the previous sweep (joules), rendered as text.
        from_joules: String,
        /// Energy at this sweep (joules), rendered as text.
        to_joules: String,
    },
    /// A server's integrated energy exceeds what running at peak power for
    /// the whole simulated time could produce.
    EnergyBudget {
        /// The server over budget.
        server: usize,
        /// Integrated energy (joules), rendered as text.
        joules: String,
        /// The physical bound (joules), rendered as text.
        bound_joules: String,
    },
    /// A server's residency accounting produced a fraction outside `[0, 1]`
    /// (or napping exceeded total idleness).
    ResidencyFraction {
        /// The server with inconsistent residency accounting.
        server: usize,
        /// Which fraction broke ("idle", "nap", "utilization", "failed",
        /// "nap>idle").
        fraction: String,
        /// The offending value, rendered as text.
        value: String,
    },
    /// Zero-advance livelock: events kept firing with no simulated-time
    /// progress.
    Livelock {
        /// Consecutive events dispatched at one identical timestamp.
        events: u64,
    },
    /// The event rate exceeded the configured budget.
    EventStorm {
        /// Events dispatched in the measurement window.
        events: u64,
        /// Simulated seconds covered by that window, rendered as text.
        window_seconds: String,
    },
    /// The calendar dispatched an event earlier than one already handled.
    TimeRegression {
        /// Timestamp of the previously handled event, rendered as text.
        from_seconds: String,
        /// Timestamp of the out-of-order event, rendered as text.
        to_seconds: String,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::RequestLedger {
                admitted,
                goodput,
                timed_out,
                in_flight,
            } => write!(
                f,
                "request ledger out of balance: goodput {goodput} + timed-out {timed_out} \
                 + in-flight {in_flight} != admitted {admitted}"
            ),
            AuditViolation::ShedConservation {
                offered,
                admitted,
                shed,
            } => write!(
                f,
                "shed ledger out of balance: admitted {admitted} + shed {shed} \
                 != offered {offered}"
            ),
            AuditViolation::JobConservation {
                injected,
                completed,
                in_system,
            } => write!(
                f,
                "job conservation broken: completed {completed} + in-system {in_system} \
                 != injected {injected}"
            ),
            AuditViolation::CompletionMismatch {
                server_completed,
                observed,
            } => write!(
                f,
                "completion mismatch: servers report {server_completed} completions \
                 but the simulation processed {observed}"
            ),
            AuditViolation::NonFiniteObservation { metric, value } => {
                write!(f, "non-finite observation {value} for metric '{metric}'")
            }
            AuditViolation::NegativeObservation { metric, value } => {
                write!(f, "negative observation {value} for metric '{metric}'")
            }
            AuditViolation::EnergyRegression {
                server,
                from_joules,
                to_joules,
            } => write!(
                f,
                "server {server} energy regressed from {from_joules} J to {to_joules} J"
            ),
            AuditViolation::EnergyBudget {
                server,
                joules,
                bound_joules,
            } => write!(
                f,
                "server {server} energy {joules} J exceeds the peak-power bound {bound_joules} J"
            ),
            AuditViolation::ResidencyFraction {
                server,
                fraction,
                value,
            } => write!(
                f,
                "server {server} residency fraction '{fraction}' out of range: {value}"
            ),
            AuditViolation::Livelock { events } => {
                write!(
                    f,
                    "livelock: {events} events with no simulated-time progress"
                )
            }
            AuditViolation::EventStorm {
                events,
                window_seconds,
            } => write!(
                f,
                "event storm: {events} events advanced simulated time by only {window_seconds} s"
            ),
            AuditViolation::TimeRegression {
                from_seconds,
                to_seconds,
            } => write!(
                f,
                "time regression: event at {to_seconds} s dispatched after {from_seconds} s"
            ),
        }
    }
}

impl From<ProgressViolation> for AuditViolation {
    fn from(v: ProgressViolation) -> Self {
        match v {
            ProgressViolation::ZeroAdvance { events } => AuditViolation::Livelock { events },
            ProgressViolation::EventStorm {
                events,
                window_seconds,
            } => AuditViolation::EventStorm {
                events,
                window_seconds: format!("{window_seconds:.3e}"),
            },
            ProgressViolation::TimeRegression {
                from_seconds,
                to_seconds,
            } => AuditViolation::TimeRegression {
                from_seconds: format!("{from_seconds:.9}"),
                to_seconds: format!("{to_seconds:.9}"),
            },
        }
    }
}

/// A soft finding: suspicious but legitimately possible, so it never fails
/// the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditWarning {
    /// The Little's-law probe `L ≈ λW` missed its tolerance band.
    LittlesLaw {
        /// Time-averaged number of jobs in the system, rendered as text.
        mean_in_system: String,
        /// Arrival rate λ in jobs per simulated second, rendered as text.
        arrival_rate: String,
        /// Mean response time W in seconds, rendered as text.
        mean_response: String,
        /// `|L − λW| / λW`, rendered as text.
        relative_error: String,
    },
}

impl std::fmt::Display for AuditWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditWarning::LittlesLaw {
                mean_in_system,
                arrival_rate,
                mean_response,
                relative_error,
            } => write!(
                f,
                "Little's law probe: L = {mean_in_system} vs λW = {arrival_rate} × \
                 {mean_response} (relative error {relative_error})"
            ),
        }
    }
}

/// Everything the auditor found, threaded through [`crate::SimulationReport`]
/// (and merged across epochs, resumes, and parallel slaves).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Whether auditing was enabled for (any part of) the run.
    pub enabled: bool,
    /// Invariant sweeps performed.
    pub checks_run: u64,
    /// Individual observations vetted by the numerical tripwires.
    pub observations_checked: u64,
    /// Hard invariant violations (empty on a clean run).
    pub violations: Vec<AuditViolation>,
    /// Soft findings (the run still counts as passed).
    pub warnings: Vec<AuditWarning>,
}

impl AuditReport {
    /// Whether the audited run is clean: no violations (warnings are
    /// allowed).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any violation is a zero-advance livelock (drives the
    /// [`crate::TerminationReason::Livelock`] classification).
    #[must_use]
    pub fn livelocked(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, AuditViolation::Livelock { .. }))
    }

    /// Folds another report (a later epoch, a parallel slave) into this
    /// one.
    pub fn merge(&mut self, other: &AuditReport) {
        self.enabled |= other.enabled;
        self.checks_run += other.checks_run;
        self.observations_checked += other.observations_checked;
        self.violations.extend(other.violations.iter().cloned());
        self.warnings.extend(other.warnings.iter().cloned());
    }
}

/// Test hook: a deliberately seeded accounting bug, used by the mutation
/// suite to prove the auditor actually catches what it claims to.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// Silently drop the first completion before it reaches the statistics
    /// and the request ledger.
    DropCompletion,
    /// Replace the first response-time observation with NaN.
    NanObservation,
    /// Schedule a same-timestamp event from every handler: a zero-advance
    /// livelock.
    Livelock,
    /// Retire a hedged request twice: when its primary completes first,
    /// count goodput but leave the request tracked so the hedge completion
    /// retires it again. The request ledger must catch the double credit.
    DoubleHedgeCompletion,
}

/// The cluster-side ledger snapshot handed to each invariant sweep.
pub(crate) struct AuditLedger {
    /// Whether per-request tracking is on (faults, retries, or resilience):
    /// the request ledger replaces raw job conservation then.
    pub tracked: bool,
    /// Whether the resilience subsystem is on (enables the shed ledger).
    pub resilience: bool,
    pub injected: u64,
    pub offered: u64,
    pub admitted: u64,
    pub shed: u64,
    pub goodput: u64,
    pub timed_out: u64,
    pub in_flight: u64,
}

/// The in-simulation auditor state. Owned by `ClusterSim` when auditing is
/// on; absent (one null check per event) when off.
#[derive(Debug, Clone)]
pub(crate) struct Auditor {
    config: AuditConfig,
    report: AuditReport,
    /// Events since the last sweep.
    events_since_sweep: u64,
    /// Completions the simulation processed (the auditor's own count,
    /// cross-checked against server truth).
    completions_seen: u64,
    /// Per-server energy at the previous sweep, for monotonicity.
    prev_energy: Vec<f64>,
    /// `peak_watts` bound for the energy budget (None without a power
    /// model — energy is identically zero then).
    peak_watts: Option<f64>,
    /// Little's-law probe: time-weighted integral of jobs in system.
    littles_integral: f64,
    littles_start: Option<f64>,
    littles_last: f64,
}

impl Auditor {
    pub(crate) fn new(config: AuditConfig, servers: usize, peak_watts: Option<f64>) -> Self {
        Auditor {
            config,
            report: AuditReport {
                enabled: true,
                ..AuditReport::default()
            },
            events_since_sweep: 0,
            completions_seen: 0,
            prev_energy: vec![0.0; servers],
            peak_watts,
            littles_integral: 0.0,
            littles_start: None,
            littles_last: 0.0,
        }
    }

    /// Whether a violation has been recorded (the run should stop).
    pub(crate) fn failed(&self) -> bool {
        !self.report.violations.is_empty()
    }

    pub(crate) fn note_completion(&mut self) {
        self.completions_seen += 1;
    }

    /// Vets one observation before it enters the statistics. Returns
    /// `false` (and records a violation) if the value must not be
    /// recorded.
    pub(crate) fn check_observation(&mut self, metric: &'static str, x: f64) -> bool {
        self.report.observations_checked += 1;
        if !x.is_finite() {
            self.report
                .violations
                .push(AuditViolation::NonFiniteObservation {
                    metric: metric.to_owned(),
                    value: format!("{x}"),
                });
            return false;
        }
        if x < 0.0 {
            self.report
                .violations
                .push(AuditViolation::NegativeObservation {
                    metric: metric.to_owned(),
                    value: format!("{x}"),
                });
            return false;
        }
        true
    }

    pub(crate) fn record_progress_violation(&mut self, v: ProgressViolation) {
        self.report.violations.push(v.into());
    }

    /// Counts one handled event; returns `true` when an invariant sweep is
    /// due. Kept trivially inlineable: this is the only per-event cost.
    #[inline]
    pub(crate) fn event_due(&mut self) -> bool {
        self.events_since_sweep += 1;
        if self.events_since_sweep >= self.config.check_interval() {
            self.events_since_sweep = 0;
            true
        } else {
            false
        }
    }

    /// One invariant sweep. Conservation sums are invariant under the
    /// servers' lazy synchronization (a job moves between the `outstanding`
    /// and `completed` buckets at sync, but their sum does not change), so
    /// sweeps are valid at any event boundary and never force a sync —
    /// forcing one would reorder statistics and break bit-identity with
    /// unaudited runs.
    pub(crate) fn sweep(&mut self, now: Time, servers: &[Server], ledger: &AuditLedger) {
        self.report.checks_run += 1;
        let completed: u64 = servers.iter().map(Server::completed_jobs).sum();
        let in_system: u64 = servers.iter().map(|s| s.outstanding() as u64).sum();

        if ledger.tracked {
            if ledger.goodput + ledger.timed_out + ledger.in_flight != ledger.admitted {
                self.report.violations.push(AuditViolation::RequestLedger {
                    admitted: ledger.admitted,
                    goodput: ledger.goodput,
                    timed_out: ledger.timed_out,
                    in_flight: ledger.in_flight,
                });
            }
            if ledger.resilience && ledger.admitted + ledger.shed != ledger.offered {
                self.report
                    .violations
                    .push(AuditViolation::ShedConservation {
                        offered: ledger.offered,
                        admitted: ledger.admitted,
                        shed: ledger.shed,
                    });
            }
        } else if completed + in_system != ledger.injected {
            self.report
                .violations
                .push(AuditViolation::JobConservation {
                    injected: ledger.injected,
                    completed,
                    in_system,
                });
        }
        if completed != self.completions_seen {
            self.report
                .violations
                .push(AuditViolation::CompletionMismatch {
                    server_completed: completed,
                    observed: self.completions_seen,
                });
        }

        self.check_energy(now, servers);
        self.sample_littles(now, ledger, in_system);
    }

    fn check_energy(&mut self, now: Time, servers: &[Server]) {
        let seconds = now.as_seconds();
        for (s, server) in servers.iter().enumerate() {
            let energy = server.energy_joules();
            if energy < self.prev_energy[s] - 1e-9 {
                self.report
                    .violations
                    .push(AuditViolation::EnergyRegression {
                        server: s,
                        from_joules: format!("{:.6}", self.prev_energy[s]),
                        to_joules: format!("{energy:.6}"),
                    });
            }
            self.prev_energy[s] = energy;
            if let Some(peak) = self.peak_watts {
                let bound = peak * seconds * (1.0 + self.config.energy_tolerance) + 1e-6;
                if energy > bound {
                    self.report.violations.push(AuditViolation::EnergyBudget {
                        server: s,
                        joules: format!("{energy:.6}"),
                        bound_joules: format!("{bound:.6}"),
                    });
                }
            }

            const EPS: f64 = 1e-9;
            let idle = server.full_idle_fraction(now);
            let nap = server.nap_fraction(now);
            let checks: [(&str, f64); 4] = [
                ("idle", idle),
                ("nap", nap),
                ("utilization", server.average_utilization(now)),
                ("failed", server.failed_fraction(now)),
            ];
            for (name, value) in checks {
                if !value.is_finite() || !(-EPS..=1.0 + EPS).contains(&value) {
                    self.report
                        .violations
                        .push(AuditViolation::ResidencyFraction {
                            server: s,
                            fraction: name.to_owned(),
                            value: format!("{value}"),
                        });
                }
            }
            if nap > idle + EPS {
                self.report
                    .violations
                    .push(AuditViolation::ResidencyFraction {
                        server: s,
                        fraction: "nap>idle".to_owned(),
                        value: format!("{nap} > {idle}"),
                    });
            }
        }
    }

    /// Time-weighted sampling of L (jobs in system) between sweeps. Only
    /// meaningful without faults/retries/shedding: timeouts, drops, and
    /// rejected arrivals muddy both λ and W, so the probe is skipped in
    /// tracked mode.
    fn sample_littles(&mut self, now: Time, ledger: &AuditLedger, in_system: u64) {
        if ledger.tracked {
            return;
        }
        let seconds = now.as_seconds();
        match self.littles_start {
            None => self.littles_start = Some(seconds),
            Some(_) => {
                let dt = (seconds - self.littles_last).max(0.0);
                self.littles_integral += in_system as f64 * dt;
            }
        }
        self.littles_last = seconds;
    }

    /// Final evaluation at the end of a run: the Little's-law probe
    /// compares the time-averaged L against `λW`. A mismatch is a warning
    /// — both sides are estimates with their own noise.
    pub(crate) fn finalize(
        &mut self,
        now: Time,
        servers: &[Server],
        ledger: &AuditLedger,
        mean_response: Option<f64>,
    ) {
        self.sweep(now, servers, ledger);
        // Demand a minimum of data before judging L ≈ λW: short calibration
        // runs legitimately miss the band.
        const MIN_JOBS: u64 = 5_000;
        let (Some(start), Some(w)) = (self.littles_start, mean_response) else {
            return;
        };
        let elapsed = self.littles_last - start;
        if ledger.tracked || ledger.injected < MIN_JOBS || elapsed <= 0.0 || w <= 0.0 {
            return;
        }
        let l = self.littles_integral / elapsed;
        let lambda = ledger.injected as f64 / now.as_seconds();
        let expected = lambda * w;
        if expected <= 0.0 {
            return;
        }
        let rel = (l - expected).abs() / expected;
        if rel > self.config.littles_law_tolerance {
            self.report.warnings.push(AuditWarning::LittlesLaw {
                mean_in_system: format!("{l:.4}"),
                arrival_rate: format!("{lambda:.4}"),
                mean_response: format!("{w:.6}"),
                relative_error: format!("{rel:.3}"),
            });
        }
    }

    pub(crate) fn into_report(self) -> AuditReport {
        self.report
    }

    #[cfg(test)]
    fn report(&self) -> &AuditReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(injected: u64) -> AuditLedger {
        AuditLedger {
            tracked: false,
            resilience: false,
            injected,
            offered: 0,
            admitted: 0,
            shed: 0,
            goodput: 0,
            timed_out: 0,
            in_flight: 0,
        }
    }

    #[test]
    fn defaults_are_loose() {
        let cfg = AuditConfig::default();
        assert_eq!(
            cfg.check_interval_events,
            AuditConfig::DEFAULT_CHECK_INTERVAL
        );
        assert_eq!(cfg.stall_limit_events, ProgressGuard::DEFAULT_STALL_LIMIT);
        assert!(cfg.littles_law_tolerance > 0.0);
    }

    #[test]
    fn tripwire_rejects_nan_and_negative() {
        let mut auditor = Auditor::new(AuditConfig::default(), 1, None);
        assert!(auditor.check_observation("response_time", 0.25));
        assert!(!auditor.check_observation("response_time", f64::NAN));
        assert!(!auditor.check_observation("response_time", -1.0));
        assert!(auditor.failed());
        let report = auditor.report();
        assert_eq!(report.observations_checked, 3);
        assert_eq!(report.violations.len(), 2);
        assert!(matches!(
            &report.violations[0],
            AuditViolation::NonFiniteObservation { metric, value }
                if metric == "response_time" && value == "NaN"
        ));
        assert!(matches!(
            &report.violations[1],
            AuditViolation::NegativeObservation { .. }
        ));
    }

    #[test]
    fn clean_sweep_on_empty_cluster_passes() {
        let mut auditor = Auditor::new(AuditConfig::default(), 0, None);
        auditor.sweep(Time::from_seconds(1.0), &[], &ledger(0));
        assert!(!auditor.failed());
        assert_eq!(auditor.report().checks_run, 1);
    }

    #[test]
    fn job_conservation_mismatch_is_flagged() {
        let mut auditor = Auditor::new(AuditConfig::default(), 0, None);
        // 5 jobs injected, but no server holds or completed any.
        auditor.sweep(Time::from_seconds(1.0), &[], &ledger(5));
        assert!(auditor.failed());
        assert!(matches!(
            auditor.report().violations[0],
            AuditViolation::JobConservation {
                injected: 5,
                completed: 0,
                in_system: 0
            }
        ));
    }

    #[test]
    fn request_ledger_mismatch_is_flagged() {
        let mut auditor = Auditor::new(AuditConfig::default(), 0, None);
        let bad = AuditLedger {
            tracked: true,
            injected: 10,
            admitted: 10,
            goodput: 7,
            timed_out: 1,
            in_flight: 1, // 7 + 1 + 1 != 10
            ..ledger(10)
        };
        auditor.sweep(Time::from_seconds(1.0), &[], &bad);
        assert!(matches!(
            auditor.report().violations[0],
            AuditViolation::RequestLedger { admitted: 10, .. }
        ));
    }

    #[test]
    fn shed_conservation_mismatch_is_flagged() {
        let mut auditor = Auditor::new(AuditConfig::default(), 0, None);
        let bad = AuditLedger {
            tracked: true,
            resilience: true,
            offered: 20,
            admitted: 15,
            shed: 4, // 15 + 4 != 20
            goodput: 14,
            timed_out: 0,
            in_flight: 1,
            ..ledger(20)
        };
        auditor.sweep(Time::from_seconds(1.0), &[], &bad);
        assert!(matches!(
            auditor.report().violations[0],
            AuditViolation::ShedConservation {
                offered: 20,
                admitted: 15,
                shed: 4
            }
        ));
        // A balanced shed ledger passes.
        let mut auditor = Auditor::new(AuditConfig::default(), 0, None);
        let good = AuditLedger {
            tracked: true,
            resilience: true,
            offered: 20,
            admitted: 15,
            shed: 5,
            goodput: 14,
            timed_out: 0,
            in_flight: 1,
            ..ledger(20)
        };
        auditor.sweep(Time::from_seconds(1.0), &[], &good);
        assert!(!auditor.failed());
    }

    #[test]
    fn completion_count_cross_check() {
        let mut auditor = Auditor::new(AuditConfig::default(), 0, None);
        auditor.note_completion(); // claims 1 completion; servers show 0
        auditor.sweep(Time::from_seconds(1.0), &[], &ledger(0));
        assert!(matches!(
            auditor.report().violations[0],
            AuditViolation::CompletionMismatch {
                server_completed: 0,
                observed: 1
            }
        ));
    }

    #[test]
    fn event_due_fires_on_interval() {
        let cfg = AuditConfig {
            check_interval_events: 3,
            ..AuditConfig::default()
        };
        let mut auditor = Auditor::new(cfg, 0, None);
        assert!(!auditor.event_due());
        assert!(!auditor.event_due());
        assert!(auditor.event_due());
        assert!(!auditor.event_due());
    }

    #[test]
    fn progress_violations_convert() {
        let v: AuditViolation = ProgressViolation::ZeroAdvance { events: 42 }.into();
        assert_eq!(v, AuditViolation::Livelock { events: 42 });
        let v: AuditViolation = ProgressViolation::EventStorm {
            events: 10,
            window_seconds: 1e-9,
        }
        .into();
        assert!(matches!(v, AuditViolation::EventStorm { events: 10, .. }));
        let v: AuditViolation = ProgressViolation::TimeRegression {
            from_seconds: 2.0,
            to_seconds: 1.0,
        }
        .into();
        assert!(matches!(v, AuditViolation::TimeRegression { .. }));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = AuditReport {
            enabled: true,
            checks_run: 2,
            observations_checked: 10,
            violations: vec![AuditViolation::Livelock { events: 3 }],
            warnings: Vec::new(),
        };
        let b = AuditReport {
            enabled: true,
            checks_run: 1,
            observations_checked: 5,
            violations: Vec::new(),
            warnings: vec![AuditWarning::LittlesLaw {
                mean_in_system: "1".into(),
                arrival_rate: "1".into(),
                mean_response: "1".into(),
                relative_error: "0.5".into(),
            }],
        };
        a.merge(&b);
        assert_eq!(a.checks_run, 3);
        assert_eq!(a.observations_checked, 15);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.warnings.len(), 1);
        assert!(!a.passed());
        assert!(a.livelocked());
    }

    #[test]
    fn displays_are_informative() {
        let v = AuditViolation::CompletionMismatch {
            server_completed: 9,
            observed: 8,
        };
        assert!(v.to_string().contains('9') && v.to_string().contains('8'));
        let v = AuditViolation::NonFiniteObservation {
            metric: "response_time".into(),
            value: "NaN".into(),
        };
        assert!(v.to_string().contains("NaN"));
        let w = AuditWarning::LittlesLaw {
            mean_in_system: "3.2".into(),
            arrival_rate: "10".into(),
            mean_response: "0.3".into(),
            relative_error: "0.07".into(),
        };
        assert!(w.to_string().contains("Little's law"));
    }

    #[test]
    fn serde_round_trip_preserves_nan_payloads() {
        let report = AuditReport {
            enabled: true,
            checks_run: 1,
            observations_checked: 2,
            violations: vec![AuditViolation::NonFiniteObservation {
                metric: "response_time".into(),
                value: "NaN".into(),
            }],
            warnings: Vec::new(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
