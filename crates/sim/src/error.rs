//! Typed simulation errors.

/// Error raised while building or running a simulation.
///
/// Replaces the panicking paths on the simulation hot path: invalid
/// configurations, a drained calendar, an exhausted event cap during
/// calibration, and a parallel run losing every slave are all reported to
/// the caller instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The experiment configuration is internally inconsistent (e.g. a
    /// metric requiring a model that is not configured).
    InvalidConfig(String),
    /// The event calendar drained before the named phase completed —
    /// cannot happen with open arrival processes, so it indicates a
    /// configuration or model error.
    CalendarDrained {
        /// The phase that was still running ("calibration", …).
        phase: &'static str,
    },
    /// The configured event cap was exhausted before the named phase
    /// completed.
    EventCapExhausted {
        /// The phase that was still running.
        phase: &'static str,
        /// The configured cap.
        cap: u64,
    },
    /// Every slave of a parallel run died before delivering results.
    NoSurvivingSlaves {
        /// How many slaves panicked.
        panicked: usize,
    },
    /// A checkpoint could not be written, read, or applied.
    Checkpoint(String),
    /// A filesystem operation failed (short write, ENOSPC, permissions…).
    /// Carries the offending path so the operator knows *which* file to
    /// fix, plus a rendering of the OS error. Rendered strings (rather
    /// than `std::io::Error`) keep `SimError` cloneable and comparable.
    Io {
        /// The operation that failed ("create", "write", "fsync", …).
        op: &'static str,
        /// The path the operation was addressing.
        path: String,
        /// A rendering of the underlying OS error.
        cause: String,
    },
    /// The runtime invariant auditor (or its progress circuit breaker)
    /// tripped during the named phase, so the run was stopped rather than
    /// allowed to hang or converge on corrupt accounting.
    AuditFailed {
        /// The phase that was running ("calibration", …).
        phase: &'static str,
        /// A rendering of the first violation.
        violation: String,
    },
    /// A frame on the master↔slave IPC fabric was malformed: truncated
    /// mid-frame, failed its FNV-1a checksum, carried an unknown protocol
    /// version, oversized its declared length, or would not deserialize.
    /// Corruption on the pipe is reported as data, never as a panic.
    Frame {
        /// What the decoder rejected ("truncated header", "checksum
        /// mismatch", …).
        detail: String,
    },
    /// A slave child process failed outside the frame protocol: it could
    /// not be spawned, exited with a non-zero status, or was killed by a
    /// signal before delivering its final shard.
    SlaveProcess {
        /// Which slave (index into the run's slave set).
        slave: usize,
        /// A rendering of what happened ("exit code 70", "signal", …).
        detail: String,
    },
    /// A caller-supplied parameter is outside its legal range. Used by
    /// builders that validate instead of asserting, so malformed input
    /// (e.g. a hostile experiment spec) surfaces as an error, not a panic.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value, rendered (NaN/∞ survive this way).
        value: String,
        /// What the parameter must satisfy.
        requirement: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
            SimError::CalendarDrained { phase } => {
                write!(f, "event calendar drained before {phase} completed")
            }
            SimError::EventCapExhausted { phase, cap } => {
                write!(f, "event cap ({cap}) exhausted before {phase} completed")
            }
            SimError::NoSurvivingSlaves { panicked } => {
                write!(
                    f,
                    "all {panicked} parallel slaves panicked; no results to merge"
                )
            }
            SimError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            SimError::Io { op, path, cause } => {
                write!(f, "I/O error: cannot {op} {path}: {cause}")
            }
            SimError::AuditFailed { phase, violation } => {
                write!(f, "invariant audit failed during {phase}: {violation}")
            }
            SimError::Frame { detail } => {
                write!(f, "frame protocol error: {detail}")
            }
            SimError::SlaveProcess { slave, detail } => {
                write!(f, "slave process {slave} failed: {detail}")
            }
            SimError::InvalidParameter {
                name,
                value,
                requirement,
            } => {
                write!(f, "invalid parameter {name}={value}: must be {requirement}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
        assert!(SimError::CalendarDrained {
            phase: "calibration"
        }
        .to_string()
        .contains("calibration"));
        assert!(SimError::EventCapExhausted {
            phase: "calibration",
            cap: 10
        }
        .to_string()
        .contains("10"));
        assert!(SimError::NoSurvivingSlaves { panicked: 4 }
            .to_string()
            .contains('4'));
        assert!(SimError::Checkpoint("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let io = SimError::Io {
            op: "write",
            path: "/ckpt/bighouse.ckpt.tmp".into(),
            cause: "No space left on device (os error 28)".into(),
        };
        assert!(io.to_string().contains("bighouse.ckpt.tmp"));
        assert!(io.to_string().contains("No space left"));
        let audit = SimError::AuditFailed {
            phase: "calibration",
            violation: "livelock after 65536 events".into(),
        };
        assert!(audit.to_string().contains("livelock"));
        let frame = SimError::Frame {
            detail: "checksum mismatch: stored 1 computed 2".into(),
        };
        assert!(frame.to_string().contains("checksum"));
        let proc = SimError::SlaveProcess {
            slave: 3,
            detail: "killed by signal".into(),
        };
        assert!(proc.to_string().contains('3'));
        assert!(proc.to_string().contains("signal"));
        let param = SimError::InvalidParameter {
            name: "watchdog_seconds",
            value: "NaN".into(),
            requirement: "positive and finite",
        };
        assert!(param.to_string().contains("watchdog_seconds"));
        assert!(param.to_string().contains("NaN"));
    }
}
