//! Typed simulation errors.

/// Error raised while building or running a simulation.
///
/// Replaces the panicking paths on the simulation hot path: invalid
/// configurations, a drained calendar, an exhausted event cap during
/// calibration, and a parallel run losing every slave are all reported to
/// the caller instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The experiment configuration is internally inconsistent (e.g. a
    /// metric requiring a model that is not configured).
    InvalidConfig(String),
    /// The event calendar drained before the named phase completed —
    /// cannot happen with open arrival processes, so it indicates a
    /// configuration or model error.
    CalendarDrained {
        /// The phase that was still running ("calibration", …).
        phase: &'static str,
    },
    /// The configured event cap was exhausted before the named phase
    /// completed.
    EventCapExhausted {
        /// The phase that was still running.
        phase: &'static str,
        /// The configured cap.
        cap: u64,
    },
    /// Every slave of a parallel run died before delivering results.
    NoSurvivingSlaves {
        /// How many slaves panicked.
        panicked: usize,
    },
    /// A checkpoint could not be written, read, or applied.
    Checkpoint(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
            SimError::CalendarDrained { phase } => {
                write!(f, "event calendar drained before {phase} completed")
            }
            SimError::EventCapExhausted { phase, cap } => {
                write!(f, "event cap ({cap}) exhausted before {phase} completed")
            }
            SimError::NoSurvivingSlaves { panicked } => {
                write!(f, "all {panicked} parallel slaves panicked; no results to merge")
            }
            SimError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimError::InvalidConfig("x".into()).to_string().contains("invalid"));
        assert!(SimError::CalendarDrained { phase: "calibration" }
            .to_string()
            .contains("calibration"));
        assert!(SimError::EventCapExhausted { phase: "calibration", cap: 10 }
            .to_string()
            .contains("10"));
        assert!(SimError::NoSurvivingSlaves { panicked: 4 }.to_string().contains('4'));
        assert!(SimError::Checkpoint("bad magic".into()).to_string().contains("bad magic"));
    }
}
