//! Simulated overload-protection mechanisms — the machinery every
//! production data center runs between its clients and its queues.
//!
//! BigHouse's fault layer models *failures*; this module models the other
//! half of degraded operation: what the cluster does to protect itself
//! when offered load exceeds capacity. Four mechanisms compose per
//! cluster, each individually optional:
//!
//! - **Admission control** ([`AdmissionPolicy`]): arrivals are rejected at
//!   the front door when the cluster is saturated — either a bounded queue
//!   (at most `capacity` requests in flight, the M/M/k/K discipline whose
//!   blocking probability `crates/analytic`'s `mmkk` module predicts in
//!   closed form) or a token bucket (a rate limiter with burst credit).
//!   Rejected arrivals are **shed**, a first-class terminal state in the
//!   request ledger — not lost, not failed.
//! - **Priority-class load shedding** ([`SheddingPolicy`]): arrivals carry
//!   a priority class drawn from [`ResilienceConfig::class_weights`]; each
//!   class has a queue-depth threshold above which its arrivals are shed.
//!   Giving lower classes lower thresholds sheds the least important
//!   traffic first as congestion builds.
//! - **Hedged requests** ([`HedgePolicy`]): a request still unfinished
//!   `deadline` seconds after placement is duplicated to the least-loaded
//!   other live server; the first completion wins and the loser is
//!   cancelled (exercising the calendar's O(log n) `cancel`). The classic
//!   tail-at-scale tactic: burn a little capacity to cut the tail.
//! - **An overload ramp** ([`OverloadRamp`]): a deterministic interval
//!   during which the arrival rate is multiplied — the stressor that,
//!   combined with client-side retries ([`ExperimentConfig::with_retry`]),
//!   reproduces **metastable failure**: retry amplification keeps the
//!   cluster congested after the ramp ends, and goodput only recovers when
//!   admission control bounds the queue. See `examples/retry_storm.rs`.
//!
//! All of it is gated on [`ExperimentConfig::with_resilience`]: with the
//! config absent, the simulation draws the identical RNG sequence and
//! takes identical branches, so estimates are bit-identical to pre-
//! resilience builds.
//!
//! [`ExperimentConfig::with_resilience`]: crate::ExperimentConfig::with_resilience
//! [`ExperimentConfig::with_retry`]: crate::ExperimentConfig::with_retry

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// How arrivals are admitted to (or rejected from) the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject arrivals while `capacity` requests are already in flight
    /// (queued + running, cluster-wide). An M/M/k cluster under this
    /// policy is the M/M/k/K queue of `bighouse_analytic::mmkk`.
    BoundedQueue {
        /// Maximum requests in flight; arrivals beyond it are shed.
        capacity: usize,
    },
    /// A token bucket: tokens accrue at `rate` per simulated second up to
    /// `burst`; each admitted arrival consumes one token, and an arrival
    /// finding the bucket empty is shed.
    TokenBucket {
        /// Sustained admission rate in requests per simulated second.
        rate: f64,
        /// Bucket depth: the largest burst admitted at once.
        burst: f64,
    },
}

/// Queue-depth thresholds for priority-class load shedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SheddingPolicy {
    /// One threshold per priority class (index = class). An arrival of
    /// class `c` is shed when the cluster-wide in-flight count has reached
    /// `depth_thresholds[c]`. Class 0 is the most important; give it the
    /// highest threshold.
    pub depth_thresholds: Vec<usize>,
}

/// Hedged-request policy: duplicate slow requests, first completion wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Seconds after placement before the hedge is launched. Pick a high
    /// percentile of service time so only stragglers are duplicated.
    pub deadline: f64,
}

/// A deterministic overload interval: offered load is multiplied while
/// `start ≤ now < start + duration`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadRamp {
    /// Simulated second at which the ramp begins.
    pub start: f64,
    /// Ramp length in simulated seconds.
    pub duration: f64,
    /// Arrival-rate multiplier during the ramp (inter-arrival gaps are
    /// divided by this).
    pub multiplier: f64,
}

impl OverloadRamp {
    /// Whether the ramp is active at simulated second `t`.
    #[must_use]
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start && t < self.start + self.duration
    }
}

/// The composable overload-protection configuration of a cluster.
///
/// Plain data by design: the CLI builds it straight from untrusted JSON,
/// so nothing here panics — all range checking lives in
/// [`ResilienceConfig::validate`], surfaced through
/// [`crate::SimError::InvalidConfig`] when the experiment is built.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Front-door admission control (`None` = admit everything).
    pub admission: Option<AdmissionPolicy>,
    /// Priority-class shedding thresholds (`None` = never shed by class).
    pub shedding: Option<SheddingPolicy>,
    /// Hedged-request policy (`None` = never hedge).
    pub hedge: Option<HedgePolicy>,
    /// Number of priority classes (≥ 1). With one class, arrivals skip the
    /// class draw entirely.
    pub classes: usize,
    /// Relative arrival weight of each class; empty means uniform. When
    /// non-empty its length must equal `classes`.
    pub class_weights: Vec<f64>,
    /// Deterministic overload interval (`None` = steady offered load).
    pub ramp: Option<OverloadRamp>,
    /// Per-request SLO deadline in seconds: a goodput completion whose
    /// response time is within it counts as SLO-attained (`None` = no SLO
    /// tracking).
    pub slo_deadline: Option<f64>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            admission: None,
            shedding: None,
            hedge: None,
            classes: 1,
            class_weights: Vec::new(),
            ramp: None,
            slo_deadline: None,
        }
    }
}

impl ResilienceConfig {
    /// A config with everything off (admit all, one class, no hedging).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the admission policy.
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Sets per-class shedding thresholds (one per class, class 0 first).
    #[must_use]
    pub fn with_shedding(mut self, depth_thresholds: Vec<usize>) -> Self {
        self.shedding = Some(SheddingPolicy { depth_thresholds });
        self
    }

    /// Enables hedged requests with the given launch deadline in seconds.
    #[must_use]
    pub fn with_hedge(mut self, deadline: f64) -> Self {
        self.hedge = Some(HedgePolicy { deadline });
        self
    }

    /// Sets the number of priority classes and their arrival weights
    /// (empty = uniform).
    #[must_use]
    pub fn with_classes(mut self, classes: usize, weights: Vec<f64>) -> Self {
        self.classes = classes;
        self.class_weights = weights;
        self
    }

    /// Adds a deterministic overload ramp.
    #[must_use]
    pub fn with_ramp(mut self, start: f64, duration: f64, multiplier: f64) -> Self {
        self.ramp = Some(OverloadRamp {
            start,
            duration,
            multiplier,
        });
        self
    }

    /// Sets the per-request SLO deadline in seconds.
    #[must_use]
    pub fn with_slo_deadline(mut self, deadline: f64) -> Self {
        self.slo_deadline = Some(deadline);
        self
    }

    /// Validates every field, including cross-field constraints against
    /// the cluster (`servers`): hedging needs somewhere to hedge *to*.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self, servers: usize) -> Result<(), SimError> {
        let bad = |msg: String| Err(SimError::InvalidConfig(msg));
        if self.classes == 0 {
            return bad("resilience.classes must be at least 1".into());
        }
        if self.classes > 64 {
            return bad(format!(
                "resilience.classes = {}: must be at most 64",
                self.classes
            ));
        }
        if !self.class_weights.is_empty() {
            if self.class_weights.len() != self.classes {
                return bad(format!(
                    "resilience.class_weights has {} entries for {} classes",
                    self.class_weights.len(),
                    self.classes
                ));
            }
            if !self.class_weights.iter().all(|w| w.is_finite() && *w > 0.0) {
                return bad("resilience.class_weights entries must be finite and positive".into());
            }
        }
        match self.admission {
            Some(AdmissionPolicy::BoundedQueue { capacity: 0 }) => {
                return bad("resilience.admission.capacity must be at least 1".into());
            }
            Some(AdmissionPolicy::TokenBucket { rate, .. })
                if !(rate.is_finite() && rate > 0.0) =>
            {
                return bad(format!(
                    "resilience.admission.rate = {rate}: must be finite and positive"
                ));
            }
            Some(AdmissionPolicy::TokenBucket { burst, .. })
                if !(burst.is_finite() && burst >= 1.0) =>
            {
                return bad(format!(
                    "resilience.admission.burst = {burst}: must be finite and at least 1"
                ));
            }
            _ => {}
        }
        if let Some(shedding) = &self.shedding {
            if shedding.depth_thresholds.len() != self.classes {
                return bad(format!(
                    "resilience.shedding has {} thresholds for {} classes",
                    shedding.depth_thresholds.len(),
                    self.classes
                ));
            }
        }
        if let Some(hedge) = &self.hedge {
            if !(hedge.deadline.is_finite() && hedge.deadline > 0.0) {
                return bad(format!(
                    "resilience.hedge.deadline = {}: must be finite and positive",
                    hedge.deadline
                ));
            }
            if servers < 2 {
                return bad("resilience.hedge requires at least 2 servers".into());
            }
        }
        if let Some(ramp) = &self.ramp {
            if !(ramp.start.is_finite() && ramp.start >= 0.0) {
                return bad(format!(
                    "resilience.ramp.start = {}: must be finite and non-negative",
                    ramp.start
                ));
            }
            if !(ramp.duration.is_finite() && ramp.duration > 0.0) {
                return bad(format!(
                    "resilience.ramp.duration = {}: must be finite and positive",
                    ramp.duration
                ));
            }
            if !(ramp.multiplier.is_finite() && ramp.multiplier > 0.0) {
                return bad(format!(
                    "resilience.ramp.multiplier = {}: must be finite and positive",
                    ramp.multiplier
                ));
            }
        }
        if let Some(slo) = self.slo_deadline {
            if !(slo.is_finite() && slo > 0.0) {
                return bad(format!(
                    "resilience.slo_deadline = {slo}: must be finite and positive"
                ));
            }
        }
        Ok(())
    }
}

/// Per-class request disposition counters, used in both the live summary
/// and the resumable-run totals (pure counts, so they add across epochs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDisposition {
    /// Arrivals of this class offered to the cluster.
    pub offered: u64,
    /// Arrivals of this class shed (by admission control or thresholds).
    pub shed: u64,
    /// Requests of this class that completed.
    pub goodput: u64,
    /// Goodput completions of this class within the SLO deadline.
    pub slo_met: u64,
}

/// Exact bookkeeping of a resilience-enabled run: how offered load was
/// disposed of and what the hedging machinery did.
///
/// Invariants: `admitted + shed == offered` and
/// `goodput + timed_out + in_flight_at_end == admitted` (both swept by the
/// auditor in paranoid mode).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSummary {
    /// Arrivals offered to the cluster (admitted + shed).
    pub offered: u64,
    /// Arrivals admitted past admission control and shedding.
    pub admitted: u64,
    /// Arrivals rejected by admission control or class thresholds.
    pub shed: u64,
    /// Admitted requests that completed (goodput).
    pub goodput: u64,
    /// Admitted requests dropped after exhausting the retry budget.
    pub timed_out: u64,
    /// Admitted requests still in flight when the run stopped.
    pub in_flight_at_end: u64,
    /// Hedge duplicates launched.
    pub hedges_launched: u64,
    /// Requests whose hedge finished first.
    pub hedge_wins: u64,
    /// Losing duplicates cancelled mid-service (the calendar-cancel path).
    pub hedge_cancelled: u64,
    /// Goodput completions within the SLO deadline (0 without one).
    pub slo_met: u64,
    /// Per-class dispositions (empty when running a single class).
    pub per_class: Vec<ClassDisposition>,
}

/// Live runtime state of the resilience machinery, boxed into the
/// simulation only when a [`ResilienceConfig`] is present.
#[derive(Debug)]
pub(crate) struct ResilienceState {
    pub offered: u64,
    pub shed: u64,
    pub hedges_launched: u64,
    pub hedge_wins: u64,
    pub hedge_cancelled: u64,
    pub slo_met: u64,
    pub per_class: Vec<ClassDisposition>,
    /// Token-bucket level; refilled lazily at each arrival.
    pub tokens: f64,
    /// Simulated second of the last token refill.
    pub tokens_at: f64,
    /// Cumulative-weight table for the class draw (empty for one class).
    pub class_cdf: Vec<f64>,
    // Epoch marks: previous-epoch cumulative values, one pair per derived
    // metric so the deltas of different metrics never couple.
    pub offered_mark: u64,
    pub shed_rate_mark: u64,
    pub hedge_launch_mark: u64,
    pub hedge_win_mark: u64,
    pub goodput_mark: u64,
    pub timed_out_mark: u64,
    pub shed_goodput_mark: u64,
}

impl ResilienceState {
    pub(crate) fn new(config: &ResilienceConfig) -> Self {
        let burst = match config.admission {
            Some(AdmissionPolicy::TokenBucket { burst, .. }) => burst,
            _ => 0.0,
        };
        let class_cdf = if config.classes > 1 {
            let weights: Vec<f64> = if config.class_weights.is_empty() {
                vec![1.0; config.classes]
            } else {
                config.class_weights.clone()
            };
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            weights
                .iter()
                .map(|w| {
                    acc += w / total;
                    acc
                })
                .collect()
        } else {
            Vec::new()
        };
        ResilienceState {
            offered: 0,
            shed: 0,
            hedges_launched: 0,
            hedge_wins: 0,
            hedge_cancelled: 0,
            slo_met: 0,
            per_class: vec![ClassDisposition::default(); config.classes],
            tokens: burst,
            tokens_at: 0.0,
            class_cdf,
            offered_mark: 0,
            shed_rate_mark: 0,
            hedge_launch_mark: 0,
            hedge_win_mark: 0,
            goodput_mark: 0,
            timed_out_mark: 0,
            shed_goodput_mark: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_everything_off() {
        let c = ResilienceConfig::new();
        assert_eq!(c.classes, 1);
        assert!(c.admission.is_none() && c.hedge.is_none() && c.shedding.is_none());
        c.validate(1).unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = ResilienceConfig::new()
            .with_admission(AdmissionPolicy::BoundedQueue { capacity: 8 })
            .with_classes(2, vec![3.0, 1.0])
            .with_shedding(vec![16, 8])
            .with_hedge(0.05)
            .with_ramp(10.0, 5.0, 3.0)
            .with_slo_deadline(0.5);
        c.validate(4).unwrap();
    }

    #[test]
    fn zero_classes_rejected() {
        let c = ResilienceConfig {
            classes: 0,
            ..ResilienceConfig::new()
        };
        assert!(c.validate(1).is_err());
    }

    #[test]
    fn weight_count_mismatch_rejected() {
        let c = ResilienceConfig::new().with_classes(3, vec![1.0, 2.0]);
        let err = c.validate(1).unwrap_err();
        assert!(err.to_string().contains("class_weights"), "{err}");
    }

    #[test]
    fn hostile_weights_rejected() {
        for w in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let c = ResilienceConfig::new().with_classes(2, vec![1.0, w]);
            assert!(c.validate(1).is_err(), "weight {w} must be rejected");
        }
    }

    #[test]
    fn threshold_count_mismatch_rejected() {
        let c = ResilienceConfig::new()
            .with_classes(2, vec![])
            .with_shedding(vec![10]);
        let err = c.validate(1).unwrap_err();
        assert!(err.to_string().contains("thresholds"), "{err}");
    }

    #[test]
    fn hostile_hedge_deadlines_rejected() {
        for d in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = ResilienceConfig::new().with_hedge(d);
            assert!(c.validate(4).is_err(), "deadline {d} must be rejected");
        }
    }

    #[test]
    fn hedging_needs_a_second_server() {
        let c = ResilienceConfig::new().with_hedge(0.1);
        let err = c.validate(1).unwrap_err();
        assert!(err.to_string().contains("2 servers"), "{err}");
        c.validate(2).unwrap();
    }

    #[test]
    fn hostile_admission_rejected() {
        let zero_cap =
            ResilienceConfig::new().with_admission(AdmissionPolicy::BoundedQueue { capacity: 0 });
        assert!(zero_cap.validate(1).is_err());
        for (rate, burst) in [
            (0.0, 5.0),
            (-1.0, 5.0),
            (f64::NAN, 5.0),
            (10.0, 0.5),
            (10.0, f64::INFINITY),
        ] {
            let c = ResilienceConfig::new()
                .with_admission(AdmissionPolicy::TokenBucket { rate, burst });
            assert!(
                c.validate(1).is_err(),
                "token bucket rate {rate} burst {burst} must be rejected"
            );
        }
    }

    #[test]
    fn hostile_ramp_rejected() {
        for (start, duration, multiplier) in [
            (-1.0, 1.0, 2.0),
            (f64::NAN, 1.0, 2.0),
            (0.0, 0.0, 2.0),
            (0.0, -5.0, 2.0),
            (0.0, 1.0, 0.0),
            (0.0, 1.0, f64::INFINITY),
        ] {
            let c = ResilienceConfig::new().with_ramp(start, duration, multiplier);
            assert!(
                c.validate(1).is_err(),
                "ramp ({start}, {duration}, {multiplier}) must be rejected"
            );
        }
    }

    #[test]
    fn hostile_slo_rejected() {
        for slo in [0.0, -0.1, f64::NAN] {
            let c = ResilienceConfig::new().with_slo_deadline(slo);
            assert!(c.validate(1).is_err(), "slo {slo} must be rejected");
        }
    }

    #[test]
    fn ramp_window_is_half_open() {
        let r = OverloadRamp {
            start: 10.0,
            duration: 5.0,
            multiplier: 2.0,
        };
        assert!(!r.active_at(9.999));
        assert!(r.active_at(10.0));
        assert!(r.active_at(14.999));
        assert!(!r.active_at(15.0));
    }

    #[test]
    fn class_cdf_is_normalized_and_ordered() {
        let c = ResilienceConfig::new().with_classes(3, vec![6.0, 3.0, 1.0]);
        let state = ResilienceState::new(&c);
        assert_eq!(state.class_cdf.len(), 3);
        assert!((state.class_cdf[0] - 0.6).abs() < 1e-12);
        assert!((state.class_cdf[1] - 0.9).abs() < 1e-12);
        assert!((state.class_cdf[2] - 1.0).abs() < 1e-12);
        // Uniform when no weights are given.
        let u = ResilienceState::new(&ResilienceConfig::new().with_classes(2, vec![]));
        assert!((u.class_cdf[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn token_bucket_starts_full() {
        let c = ResilienceConfig::new().with_admission(AdmissionPolicy::TokenBucket {
            rate: 100.0,
            burst: 16.0,
        });
        let state = ResilienceState::new(&c);
        assert_eq!(state.tokens, 16.0);
    }

    #[test]
    fn serde_round_trip() {
        let c = ResilienceConfig::new()
            .with_admission(AdmissionPolicy::TokenBucket {
                rate: 50.0,
                burst: 10.0,
            })
            .with_classes(2, vec![2.0, 1.0])
            .with_shedding(vec![30, 10])
            .with_hedge(0.02)
            .with_slo_deadline(0.25);
        let json = serde_json::to_string(&c).unwrap();
        let back: ResilienceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
