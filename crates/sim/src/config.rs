//! Experiment configuration.

use bighouse_faults::{FaultProcess, RetryPolicy};
use bighouse_models::{BalancerPolicy, DvfsModel, IdlePolicy, LinearPowerModel, PowerCapper};
use bighouse_stats::MetricSpec;
use bighouse_workloads::Workload;

use crate::audit::AuditConfig;
use crate::error::SimError;
use crate::fastpath::FastPathMode;
use crate::resilience::ResilienceConfig;

/// How arrivals reach the cluster's servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalMode {
    /// Every server has its own independent arrival stream drawn from the
    /// workload (the paper's cluster-scaling experiments, where each
    /// server's load is statistically identical).
    PerServer,
    /// One central arrival stream dispatched by a load balancer.
    LoadBalanced(BalancerPolicy),
}

/// The built-in observables an experiment can track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MetricKind {
    /// Per-task sojourn time (always tracked).
    ResponseTime,
    /// Per-task queueing delay, recorded **only when a task actually
    /// waited** — which is why Figure 9's "+Waiting" runs take so much
    /// longer: "wait events are much less frequent than request completion
    /// events".
    WaitingTime,
    /// Cluster-total capping level in watts, one observation per budgeting
    /// epoch (requires a capper) — Figure 9's "+Capping" observable, rarer
    /// still than waiting since "capping epochs occur less frequently than
    /// request completions". Being epoch-paced, this metric pins the
    /// *simulated duration* regardless of cluster size, which is what makes
    /// Figure 7's runtime grow linearly with the number of servers.
    CappingLevel,
    /// Per-server, per-epoch average power in watts (requires a power
    /// model).
    ServerPower,
    /// Per-server, per-epoch fraction of the epoch the server was up
    /// (requires fault injection). Epoch-paced like power; its long-run
    /// mean converges to the analytic `MTBF / (MTBF + MTTR)`.
    Availability,
    /// Per-epoch fraction of offered arrivals shed by admission control or
    /// class thresholds (requires a resilience config). Under a bounded
    /// queue its long-run mean converges to the analytic M/M/k/K blocking
    /// probability (Erlang-B when K = k).
    ShedRate,
    /// Per-epoch fraction of launched hedges that finished before their
    /// primary (requires a hedge policy).
    HedgeWinRate,
    /// Per-epoch goodput / (goodput + timed-out + shed): the fraction of
    /// disposed offered load that produced a useful completion (requires a
    /// resilience config). This is the goodput-vs-throughput observable —
    /// under a retry storm it collapses while raw throughput stays busy.
    GoodputFraction,
    /// Per-completion indicator that response time met the SLO deadline
    /// (requires `resilience.slo_deadline`). Request-paced; its mean is
    /// SLO attainment.
    SloAttainment,
}

impl MetricKind {
    /// The metric's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::ResponseTime => "response_time",
            MetricKind::WaitingTime => "waiting_time",
            MetricKind::CappingLevel => "capping_level",
            MetricKind::ServerPower => "server_power",
            MetricKind::Availability => "availability",
            MetricKind::ShedRate => "shed_rate",
            MetricKind::HedgeWinRate => "hedge_win_rate",
            MetricKind::GoodputFraction => "goodput_fraction",
            MetricKind::SloAttainment => "slo_attainment",
        }
    }
}

/// Everything needed to run one BigHouse experiment.
///
/// Construct with [`ExperimentConfig::new`] and refine with the builder
/// methods; all defaults mirror the paper (§4: quad-core servers, 95%
/// confidence, E = 0.05 on the mean and the 95th percentile).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExperimentConfig {
    pub(crate) workload: Workload,
    pub(crate) servers: usize,
    pub(crate) cores_per_server: usize,
    pub(crate) idle_policy: IdlePolicy,
    pub(crate) dvfs: DvfsModel,
    pub(crate) power_model: Option<LinearPowerModel>,
    pub(crate) capper: Option<PowerCapper>,
    pub(crate) arrival_mode: ArrivalMode,
    /// Tracked metrics; `None` means "inherit the experiment-wide targets",
    /// `Some(spec)` is used verbatim.
    pub(crate) metrics: Vec<(MetricKind, Option<MetricSpec>)>,
    pub(crate) target_accuracy: f64,
    pub(crate) confidence: f64,
    pub(crate) quantile: f64,
    pub(crate) warmup: u64,
    pub(crate) calibration: usize,
    pub(crate) max_events: u64,
    pub(crate) faults: Option<FaultProcess>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) resilience: Option<ResilienceConfig>,
    pub(crate) audit: Option<AuditConfig>,
    pub(crate) telemetry: bool,
    /// Engine selection for plain G/G/k FCFS segments (see
    /// [`FastPathMode`]). Defaults to [`FastPathMode::Auto`]; absent from
    /// older serialized configs, which deserialize to the default.
    #[serde(default)]
    pub(crate) fastpath: FastPathMode,
}

impl ExperimentConfig {
    /// Creates a single quad-core-server experiment at the workload's
    /// as-measured load, observing response time.
    #[must_use]
    pub fn new(workload: Workload) -> Self {
        ExperimentConfig {
            workload,
            servers: 1,
            cores_per_server: 4,
            idle_policy: IdlePolicy::AlwaysOn,
            dvfs: DvfsModel::default(),
            power_model: None,
            capper: None,
            arrival_mode: ArrivalMode::PerServer,
            metrics: vec![(MetricKind::ResponseTime, None)],
            target_accuracy: 0.05,
            confidence: 0.95,
            quantile: 0.95,
            warmup: 1000,
            calibration: MetricSpec::DEFAULT_CALIBRATION,
            max_events: u64::MAX,
            faults: None,
            retry: None,
            resilience: None,
            audit: None,
            telemetry: false,
            fastpath: FastPathMode::Auto,
        }
    }

    /// Sets the number of servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    #[must_use]
    pub fn with_servers(mut self, servers: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        self.servers = servers;
        self
    }

    /// Sets cores per server (paper default: quad-core).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "server needs at least one core");
        self.cores_per_server = cores;
        self
    }

    /// Scales the workload's arrival process so each server runs at the
    /// given fraction of peak load.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization < 1`.
    #[must_use]
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        self.workload = self
            .workload
            .at_utilization(utilization, self.cores_per_server as u32);
        self
    }

    /// Sets the idle low-power policy for every server.
    #[must_use]
    pub fn with_idle_policy(mut self, policy: IdlePolicy) -> Self {
        self.idle_policy = policy;
        self
    }

    /// Sets the DVFS performance model.
    #[must_use]
    pub fn with_dvfs(mut self, dvfs: DvfsModel) -> Self {
        self.dvfs = dvfs;
        self
    }

    /// Attaches a power model to every server (enables energy accounting
    /// and the [`MetricKind::ServerPower`] observable).
    #[must_use]
    pub fn with_power_model(mut self, model: LinearPowerModel) -> Self {
        self.power_model = Some(model);
        self
    }

    /// Enables global power capping (§4.1). Implies the power model used by
    /// the capper.
    #[must_use]
    pub fn with_capper(mut self, capper: PowerCapper) -> Self {
        self.power_model = Some(*capper.power_model());
        self.dvfs = *capper.dvfs();
        self.capper = Some(capper);
        self
    }

    /// Sets the arrival mode (per-server streams or load-balanced).
    #[must_use]
    pub fn with_arrival_mode(mut self, mode: ArrivalMode) -> Self {
        self.arrival_mode = mode;
        self
    }

    /// Adds an observable with the experiment-wide targets.
    ///
    /// Response time is always present; adding it again is a no-op.
    #[must_use]
    pub fn with_metric(mut self, kind: MetricKind) -> Self {
        if !self.metrics.iter().any(|(k, _)| *k == kind) {
            self.metrics.push((kind, None));
        }
        self
    }

    /// Adds (or replaces) an observable with a fully custom [`MetricSpec`]
    /// that overrides the experiment-wide targets — e.g. a looser accuracy
    /// or a shorter calibration for a rare, epoch-paced metric.
    ///
    /// # Panics
    ///
    /// Panics if the spec's name differs from `kind.name()`; the simulation
    /// wires observations by that name.
    #[must_use]
    pub fn with_metric_spec(mut self, kind: MetricKind, spec: MetricSpec) -> Self {
        assert_eq!(
            spec.name(),
            kind.name(),
            "metric spec must be named after its kind"
        );
        if let Some(entry) = self.metrics.iter_mut().find(|(k, _)| *k == kind) {
            entry.1 = Some(spec);
        } else {
            self.metrics.push((kind, Some(spec)));
        }
        self
    }

    /// Sets the relative accuracy target E for **all** metrics (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < e < 1`.
    #[must_use]
    pub fn with_target_accuracy(mut self, e: f64) -> Self {
        assert!(e > 0.0 && e < 1.0, "accuracy must be in (0, 1), got {e}");
        self.target_accuracy = e;
        self
    }

    /// Sets the confidence level for all metrics.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1), got {confidence}"
        );
        self.confidence = confidence;
        self
    }

    /// Sets the quantile tracked by every metric (default: 0.95).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    #[must_use]
    pub fn with_quantile(mut self, q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        self.quantile = q;
        self
    }

    /// Sets the warm-up observation count N_w per metric.
    #[must_use]
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the calibration sample size per metric.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn with_calibration(mut self, calibration: usize) -> Self {
        assert!(calibration > 0, "calibration sample must be non-empty");
        self.calibration = calibration;
        self
    }

    /// Caps total simulated events (safety valve for unstable configs).
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Enables fault injection: every server alternates between up and
    /// down phases drawn from the given renewal process. Down servers
    /// preempt their in-flight jobs (progress is lost), are skipped by the
    /// load balancer, and draw failed-state power.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultProcess) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables client-side request timeouts with retry: a request not
    /// completed within the policy's timeout is cancelled at its server and
    /// redispatched after a jittered backoff, up to the retry budget.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Enables the overload-resilience subsystem: admission control,
    /// priority-class load shedding, hedged requests, and/or a
    /// deterministic overload ramp, per the given config. With the config
    /// absent the simulation draws the identical RNG sequence and takes
    /// identical branches, so estimates are bit-identical to runs built
    /// before this subsystem existed.
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// The resilience configuration, if overload protection is enabled.
    #[must_use]
    pub fn resilience(&self) -> Option<&ResilienceConfig> {
        self.resilience.as_ref()
    }

    /// Enables the runtime invariant auditor ("paranoid mode"): every
    /// observation is vetted before entering the statistics, conservation
    /// and energy accounting are swept on an event cadence, and the
    /// runners break livelocks and event storms with an honest partial
    /// report instead of hanging. Purely observational: estimates are
    /// bit-identical with auditing on or off.
    #[must_use]
    pub fn with_audit(mut self, audit: AuditConfig) -> Self {
        self.audit = Some(audit);
        self
    }

    /// The audit configuration, if paranoid mode is enabled.
    #[must_use]
    pub fn audit(&self) -> Option<&AuditConfig> {
        self.audit.as_ref()
    }

    /// Enables telemetry: counters, gauges, latency histograms, and the
    /// statistics phase-transition log are collected during the run and
    /// surfaced on the report's `runtime.telemetry` section. Like the
    /// auditor, telemetry is purely observational — it reads values the
    /// simulation already computes and never draws randomness — so
    /// estimates are bit-identical with telemetry on or off.
    #[must_use]
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Whether telemetry collection is enabled.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Selects the engine for plain G/G/k FCFS segments: [`Auto`]
    /// (default) uses the analytic fast path whenever the configuration is
    /// eligible, [`Off`] always runs the full event calendar, and
    /// [`Force`] requests the fast path but still falls back to the
    /// calendar on ineligible configurations. All three modes produce
    /// bit-identical estimates — the fast path consumes the identical RNG
    /// stream and records the identical observation sequence.
    ///
    /// [`Auto`]: FastPathMode::Auto
    /// [`Off`]: FastPathMode::Off
    /// [`Force`]: FastPathMode::Force
    #[must_use]
    pub fn with_fastpath(mut self, mode: FastPathMode) -> Self {
        self.fastpath = mode;
        self
    }

    /// The configured fast-path mode.
    #[must_use]
    pub fn fastpath(&self) -> FastPathMode {
        self.fastpath
    }

    /// The configured workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Number of servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Cores per server.
    #[must_use]
    pub fn cores_per_server(&self) -> usize {
        self.cores_per_server
    }

    /// The configured fault process, if fault injection is enabled.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultProcess> {
        self.faults.as_ref()
    }

    /// The configured retry policy, if request timeouts are enabled.
    #[must_use]
    pub fn retry(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// The metric specs this experiment will register, with experiment-wide
    /// targets applied.
    #[must_use]
    pub fn metric_specs(&self) -> Vec<(MetricKind, MetricSpec)> {
        self.metrics
            .iter()
            .map(|(kind, custom)| {
                let spec = match custom {
                    Some(spec) => spec.clone(),
                    None => {
                        let spec = MetricSpec::new(kind.name())
                            .with_target_accuracy(self.target_accuracy)
                            .with_confidence(self.confidence)
                            .with_warmup(self.warmup)
                            .with_calibration(self.calibration);
                        // Availability and SLO attainment mass sits on
                        // {0, 1}, and the resilience rates are bounded
                        // epoch fractions: their quantiles are degenerate
                        // (zero density), so by default only the mean
                        // carries an accuracy target.
                        match kind {
                            MetricKind::Availability
                            | MetricKind::ShedRate
                            | MetricKind::HedgeWinRate
                            | MetricKind::GoodputFraction
                            | MetricKind::SloAttainment => spec.with_quantiles(&[]),
                            _ => spec.with_quantiles(&[self.quantile]),
                        }
                    }
                };
                (*kind, spec)
            })
            .collect()
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if a metric requires a model
    /// that is not configured (capping level without a capper, power
    /// without a power model, availability without fault injection).
    pub(crate) fn validate(&self) -> Result<(), SimError> {
        for (kind, _) in &self.metrics {
            match kind {
                MetricKind::CappingLevel if self.capper.is_none() => {
                    return Err(SimError::InvalidConfig(
                        "capping_level metric requires a PowerCapper".into(),
                    ));
                }
                MetricKind::ServerPower if self.power_model.is_none() => {
                    return Err(SimError::InvalidConfig(
                        "server_power metric requires a power model".into(),
                    ));
                }
                MetricKind::Availability if self.faults.is_none() => {
                    return Err(SimError::InvalidConfig(
                        "availability metric requires fault injection (with_faults)".into(),
                    ));
                }
                MetricKind::ShedRate | MetricKind::GoodputFraction if self.resilience.is_none() => {
                    return Err(SimError::InvalidConfig(format!(
                        "{} metric requires a resilience config (with_resilience)",
                        kind.name()
                    )));
                }
                MetricKind::HedgeWinRate
                    if self.resilience.as_ref().is_none_or(|r| r.hedge.is_none()) =>
                {
                    return Err(SimError::InvalidConfig(
                        "hedge_win_rate metric requires a hedge policy (resilience.hedge)".into(),
                    ));
                }
                MetricKind::SloAttainment
                    if self
                        .resilience
                        .as_ref()
                        .is_none_or(|r| r.slo_deadline.is_none()) =>
                {
                    return Err(SimError::InvalidConfig(
                        "slo_attainment metric requires resilience.slo_deadline".into(),
                    ));
                }
                _ => {}
            }
        }
        if let Some(resilience) = &self.resilience {
            resilience.validate(self.servers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bighouse_dists::Distribution;
    use bighouse_workloads::StandardWorkload;

    fn base() -> ExperimentConfig {
        ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
    }

    #[test]
    fn defaults_match_paper() {
        let c = base();
        assert_eq!(c.servers(), 1);
        assert_eq!(c.cores_per_server(), 4);
        assert_eq!(c.target_accuracy, 0.05);
        assert_eq!(c.confidence, 0.95);
        assert_eq!(c.quantile, 0.95);
        assert_eq!(c.calibration, 5000);
    }

    #[test]
    fn metric_specs_inherit_targets() {
        let c = base()
            .with_metric(MetricKind::WaitingTime)
            .with_target_accuracy(0.01)
            .with_quantile(0.99);
        let specs = c.metric_specs();
        assert_eq!(specs.len(), 2);
        for (_, spec) in &specs {
            assert_eq!(spec.target_accuracy(), 0.01);
            assert_eq!(spec.quantiles(), &[0.99]);
        }
    }

    #[test]
    fn duplicate_metric_is_noop() {
        let c = base().with_metric(MetricKind::ResponseTime);
        assert_eq!(c.metric_specs().len(), 1);
    }

    #[test]
    fn capping_metric_without_capper_rejected() {
        let err = base().with_metric(MetricKind::CappingLevel).validate();
        assert!(matches!(err, Err(SimError::InvalidConfig(_))), "{err:?}");
    }

    #[test]
    fn capper_implies_power_model() {
        use bighouse_models::{DvfsModel, LinearPowerModel, PowerCapper};
        let c = base().with_capper(PowerCapper::new(
            LinearPowerModel::typical_server(),
            DvfsModel::default(),
            500.0,
        ));
        assert!(c.power_model.is_some());
        c.with_metric(MetricKind::CappingLevel).validate().unwrap();
    }

    #[test]
    fn availability_metric_requires_faults() {
        let err = base().with_metric(MetricKind::Availability).validate();
        assert!(matches!(err, Err(SimError::InvalidConfig(_))), "{err:?}");
        let ok = base()
            .with_metric(MetricKind::Availability)
            .with_faults(FaultProcess::exponential(100.0, 10.0).unwrap())
            .validate();
        assert!(ok.is_ok());
    }

    #[test]
    fn availability_spec_is_mean_only() {
        let c = base()
            .with_metric(MetricKind::Availability)
            .with_faults(FaultProcess::exponential(100.0, 10.0).unwrap());
        let specs = c.metric_specs();
        let (_, spec) = specs
            .iter()
            .find(|(kind, _)| *kind == MetricKind::Availability)
            .unwrap();
        assert!(spec.quantiles().is_empty());
    }

    #[test]
    fn resilience_metrics_require_resilience_config() {
        use crate::resilience::ResilienceConfig;
        for kind in [MetricKind::ShedRate, MetricKind::GoodputFraction] {
            let err = base().with_metric(kind).validate();
            assert!(matches!(err, Err(SimError::InvalidConfig(_))), "{err:?}");
            base()
                .with_metric(kind)
                .with_resilience(ResilienceConfig::new())
                .validate()
                .unwrap();
        }
        // Hedge-win rate needs a hedge policy, not just any resilience.
        let err = base()
            .with_metric(MetricKind::HedgeWinRate)
            .with_resilience(ResilienceConfig::new())
            .validate();
        assert!(matches!(err, Err(SimError::InvalidConfig(_))), "{err:?}");
        base()
            .with_servers(2)
            .with_metric(MetricKind::HedgeWinRate)
            .with_resilience(ResilienceConfig::new().with_hedge(0.1))
            .validate()
            .unwrap();
        // SLO attainment needs a deadline.
        let err = base()
            .with_metric(MetricKind::SloAttainment)
            .with_resilience(ResilienceConfig::new())
            .validate();
        assert!(matches!(err, Err(SimError::InvalidConfig(_))), "{err:?}");
    }

    #[test]
    fn resilience_validation_runs_against_cluster() {
        use crate::resilience::ResilienceConfig;
        // Hedging on a single-server cluster has nowhere to hedge to.
        let err = base()
            .with_resilience(ResilienceConfig::new().with_hedge(0.1))
            .validate();
        assert!(matches!(err, Err(SimError::InvalidConfig(_))), "{err:?}");
    }

    #[test]
    fn resilience_rate_specs_are_mean_only() {
        use crate::resilience::ResilienceConfig;
        let c = base()
            .with_servers(2)
            .with_resilience(
                ResilienceConfig::new()
                    .with_hedge(0.1)
                    .with_slo_deadline(0.5),
            )
            .with_metric(MetricKind::ShedRate)
            .with_metric(MetricKind::HedgeWinRate)
            .with_metric(MetricKind::GoodputFraction)
            .with_metric(MetricKind::SloAttainment);
        for (kind, spec) in c.metric_specs() {
            if kind != MetricKind::ResponseTime {
                assert!(spec.quantiles().is_empty(), "{} has quantiles", kind.name());
            }
        }
    }

    #[test]
    fn utilization_rescales_workload() {
        let c = base();
        let scaled = base().with_utilization(0.5);
        assert!(scaled.workload().interarrival().mean() != c.workload().interarrival().mean());
    }
}
