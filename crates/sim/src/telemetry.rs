//! Cluster-side telemetry plumbing.
//!
//! [`ClusterTelemetry`] is the per-run instrumentation context. It lives
//! behind `Option<Box<_>>` on [`ClusterSim`], exactly like the runtime
//! auditor, so a plain run pays one null check per instrumented site and
//! nothing else. The *hot* facts — samples recorded, queue depths,
//! per-metric phase state — are plain struct fields and a dense `Vec`
//! indexed by `MetricId`, not name-keyed map entries: recording on the
//! per-observation path is a couple of integer ops. The name-keyed
//! [`MemoryRecorder`] is reserved for rare events (failures, retries,
//! phase transitions) and everything is folded into one recorder by
//! [`ClusterTelemetry::into_recorder`] when the run ends.
//!
//! Everything recorded here is a pure function of values the simulation
//! already computes — queue depths, utilizations, phase-machine state. No
//! randomness is drawn, no simulation state is mutated, so instrumented
//! runs are bit-identical to plain runs at the same seed. Wall-clock
//! values (the one unavoidable source of nondeterminism) are quarantined
//! in the snapshot's `wall` map and in `PhaseTransition::wall_seconds`,
//! which [`TelemetrySnapshot::without_wall_times`] strips for CI
//! comparison.
//!
//! [`ClusterSim`]: crate::cluster::ClusterSim

use std::time::Instant;

use bighouse_des::{CalendarStats, Time};
use bighouse_stats::{MetricId, Phase, StatsCollection};
use bighouse_telemetry::{
    FixedBinHistogram, MemoryRecorder, PhaseTransition, Recorder, TelemetrySnapshot,
};

/// Per-run instrumentation context carried by `ClusterSim`.
#[derive(Debug)]
pub(crate) struct ClusterTelemetry {
    /// Name-keyed sink for *rare* events only (failures, retries,
    /// timeouts, phase transitions) — never touched per observation.
    pub(crate) rec: MemoryRecorder,
    /// When this context was created — phase transitions are stamped with
    /// elapsed wall time (quarantined, see module docs).
    started: Instant,
    /// Last known phase per metric (indexed by `MetricId::index`), so a
    /// transition is recorded exactly once when a metric advances.
    last_phases: Vec<Phase>,
    /// Observations accepted into estimators (hot: plain field).
    samples_recorded: u64,
    /// Observations vetoed by the auditor before recording.
    samples_rejected: u64,
    /// Queue depth observed at each dispatch decision. Depths are small
    /// integers; 64 unit-wide bins cover any sane cluster and the
    /// overflow bucket absorbs pathologies.
    queue_depth: FixedBinHistogram,
    /// Deepest queue ever observed.
    queue_depth_high_water: usize,
    /// Per-server busy fraction sampled once per observation epoch.
    server_utilization: FixedBinHistogram,
    /// Observation epochs sampled.
    utilization_snapshots: u64,
    /// Mean utilization over the most recent epoch.
    last_epoch_utilization_mean: Option<f64>,
    /// Engine builds that entered the analytic fast path.
    fastpath_entries: u64,
    /// Engine builds that fell back to the calendar on an ineligible
    /// configuration (counted identically whatever the requested mode, so
    /// `force` and `off` telemetry stays byte-comparable).
    fastpath_bailouts: u64,
    /// Departures the fast path batch-processed (hot: plain field).
    fastpath_batched_departures: u64,
}

impl ClusterTelemetry {
    /// Creates a context with the standard cluster histograms registered.
    pub(crate) fn new() -> Self {
        ClusterTelemetry {
            rec: MemoryRecorder::new(),
            started: Instant::now(),
            last_phases: Vec::new(),
            samples_recorded: 0,
            samples_rejected: 0,
            queue_depth: FixedBinHistogram::linear(0.0, 64.0, 64),
            queue_depth_high_water: 0,
            server_utilization: FixedBinHistogram::linear(0.0, 1.0, 20),
            utilization_snapshots: 0,
            last_epoch_utilization_mean: None,
            fastpath_entries: 0,
            fastpath_bailouts: 0,
            fastpath_batched_departures: 0,
        }
    }

    /// Captures the current phase of every metric without recording
    /// transitions. Called right after the statistics collection is built
    /// (or restored from a checkpoint) so the first genuine transition is
    /// attributed correctly.
    pub(crate) fn prime_phases(&mut self, stats: &StatsCollection) {
        self.last_phases = stats.iter().map(|m| m.phase()).collect();
    }

    /// Counts an observation accepted into an estimator.
    #[inline]
    pub(crate) fn note_sample_recorded(&mut self) {
        self.samples_recorded += 1;
    }

    /// Counts an observation the auditor vetoed.
    #[inline]
    pub(crate) fn note_sample_rejected(&mut self) {
        self.samples_rejected += 1;
    }

    /// Counts an engine build that entered the analytic fast path.
    #[inline]
    pub(crate) fn note_fastpath_entry(&mut self) {
        self.fastpath_entries += 1;
    }

    /// Counts an engine build that bailed out to the calendar because the
    /// configuration is fast-path ineligible.
    #[inline]
    pub(crate) fn note_fastpath_bailout(&mut self) {
        self.fastpath_bailouts += 1;
    }

    /// Counts departures the fast path batch-processed.
    #[inline]
    pub(crate) fn note_fastpath_batched_departures(&mut self, n: u64) {
        self.fastpath_batched_departures += n;
    }

    /// Records a queue-depth sample at a dispatch decision.
    #[inline]
    pub(crate) fn note_queue_depth(&mut self, depth: usize) {
        self.queue_depth.observe(depth as f64);
        if depth > self.queue_depth_high_water {
            self.queue_depth_high_water = depth;
        }
    }

    /// Records one epoch's per-server utilization snapshot.
    pub(crate) fn note_epoch_utilizations(&mut self, utilizations: &[f64]) {
        if utilizations.is_empty() {
            return;
        }
        self.utilization_snapshots += 1;
        let mut sum = 0.0;
        for &u in utilizations {
            self.server_utilization.observe(u);
            sum += u;
        }
        self.last_epoch_utilization_mean = Some(sum / utilizations.len() as f64);
    }

    /// Detects and records a phase-machine transition of the metric that
    /// just received an observation. `now` is simulated time; wall time is
    /// stamped from this context's epoch. Checking only the touched metric
    /// keeps the per-observation cost O(1); a metric whose phase was
    /// advanced by the *global* warm-up gate logs its transition on its own
    /// next observation.
    #[inline]
    pub(crate) fn sync_phase(&mut self, stats: &StatsCollection, id: MetricId, now: Time) {
        // Metrics are only ever appended, so growth means new metrics:
        // adopt their current phase silently (no transition to report).
        while self.last_phases.len() < stats.len() {
            let idx = self.last_phases.len();
            let phase = stats.iter().nth(idx).map_or(Phase::Warmup, |m| m.phase());
            self.last_phases.push(phase);
        }
        let idx = id.index();
        let metric = stats.metric(id);
        let phase = metric.phase();
        if phase != self.last_phases[idx] {
            self.rec.counter_add("stats.phase_transitions", 1);
            self.rec.phase_transition(PhaseTransition {
                metric: metric.spec().name().to_string(),
                from: self.last_phases[idx].to_string(),
                to: phase.to_string(),
                simulated_seconds: now.as_seconds(),
                wall_seconds: self.started.elapsed().as_secs_f64(),
                total_observed: metric.total_observed(),
            });
            self.last_phases[idx] = phase;
        }
    }

    /// Folds the hot-path fields into the recorder and returns it — the
    /// single name-keyed view the snapshot assembly works from.
    pub(crate) fn into_recorder(self) -> MemoryRecorder {
        let ClusterTelemetry {
            mut rec,
            samples_recorded,
            samples_rejected,
            queue_depth,
            queue_depth_high_water,
            server_utilization,
            utilization_snapshots,
            last_epoch_utilization_mean,
            fastpath_entries,
            fastpath_bailouts,
            fastpath_batched_departures,
            ..
        } = self;
        rec.counter_add("stats.samples_recorded", samples_recorded);
        // Always emitted, even at zero: the fast-path decision is part of
        // every run's deterministic record, and a missing key would make
        // `force` vs `off` snapshots structurally incomparable.
        rec.counter_add("fastpath.entries", fastpath_entries);
        rec.counter_add("fastpath.bailouts", fastpath_bailouts);
        rec.counter_add("fastpath.batched_departures", fastpath_batched_departures);
        if samples_rejected > 0 {
            rec.counter_add("stats.samples_rejected", samples_rejected);
        }
        if queue_depth.count() > 0 {
            rec.gauge_set("sim.queue_depth_high_water", queue_depth_high_water as f64);
        }
        rec.register_histogram("sim.queue_depth", queue_depth);
        if utilization_snapshots > 0 {
            rec.counter_add("sim.utilization_snapshots", utilization_snapshots);
        }
        if let Some(mean) = last_epoch_utilization_mean {
            rec.gauge_set("sim.last_epoch_utilization_mean", mean);
        }
        rec.register_histogram("sim.server_utilization", server_utilization);
        rec
    }
}

/// Assembles the final [`TelemetrySnapshot`] for a run: everything the
/// in-sim recorder gathered, plus the engine counters, per-metric
/// statistics facts, and (quarantined) wall-clock throughput figures.
///
/// `stats` is the final collection (if still available), `cal` the summed
/// calendar counters, `events_fired` the engine total, and `wall_seconds`
/// the run's wall-clock duration.
pub(crate) fn assemble_snapshot(
    rec: &MemoryRecorder,
    stats: Option<&StatsCollection>,
    cal: &CalendarStats,
    events_fired: u64,
    wall_seconds: f64,
) -> TelemetrySnapshot {
    let mut snap = rec.snapshot();

    // Engine layer: deterministic counters straight off the calendar.
    snap.counters
        .insert("des.events_scheduled".into(), cal.scheduled);
    snap.counters.insert("des.events_fired".into(), cal.fired);
    snap.counters
        .insert("des.events_cancelled".into(), cal.cancelled);
    snap.counters
        .insert("des.sift_steps".into(), cal.sift_steps);
    snap.gauges.insert(
        "des.calendar_depth_high_water".into(),
        cal.depth_high_water as f64,
    );

    // Statistics layer: per-metric facts with dynamic (metric-named) keys.
    if let Some(stats) = stats {
        for metric in stats.iter() {
            let name = metric.spec().name();
            let kept = metric.kept_count();
            let seen = metric.measurement_seen();
            snap.gauges
                .insert(format!("stats.{name}.lag"), metric.lag() as f64);
            snap.counters
                .insert(format!("stats.{name}.samples_kept"), kept);
            snap.counters.insert(
                format!("stats.{name}.samples_discarded"),
                seen.saturating_sub(kept),
            );
            snap.counters.insert(
                format!("stats.{name}.total_observed"),
                metric.total_observed(),
            );
            let accuracy = metric.current_relative_accuracy();
            if accuracy.is_finite() {
                snap.gauges
                    .insert(format!("stats.{name}.relative_accuracy"), accuracy);
                snap.gauges.insert(
                    format!("stats.{name}.convergence_margin"),
                    metric.spec().target_accuracy() - accuracy,
                );
            }
        }
    }

    // Wall-clock throughput: quarantined so deterministic sections stay
    // bit-comparable across runs.
    snap.wall.insert("wall_seconds".into(), wall_seconds);
    if wall_seconds > 0.0 {
        let events_per_second = events_fired as f64 / wall_seconds;
        snap.wall
            .insert("des.events_per_second".into(), events_per_second);
        snap.wall.insert(
            "des.wall_seconds_per_1m_events".into(),
            wall_seconds * 1.0e6 / events_fired.max(1) as f64,
        );
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use bighouse_stats::MetricSpec;

    #[test]
    fn phase_sync_records_each_transition_once() {
        let mut stats = StatsCollection::new();
        let id = stats.add_metric(
            MetricSpec::new("m")
                .with_warmup(2)
                .with_calibration(3)
                .with_quantiles(&[]),
        );
        let mut tel = ClusterTelemetry::new();
        tel.prime_phases(&stats);
        for i in 0..64 {
            stats.record(id, 1.0 + f64::from(i % 7) * 0.1);
            tel.sync_phase(&stats, id, Time::from_seconds(f64::from(i)));
        }
        let snap = tel.into_recorder().snapshot();
        let froms: Vec<&str> = snap.phases.iter().map(|p| p.from.as_str()).collect();
        assert!(froms.contains(&"warm-up"), "phases: {froms:?}");
        assert!(froms.contains(&"calibration"), "phases: {froms:?}");
        // Each edge recorded at most once per metric.
        let n_warmup_exits = froms.iter().filter(|f| **f == "warm-up").count();
        assert_eq!(n_warmup_exits, 1);
        assert_eq!(
            snap.counters["stats.phase_transitions"],
            snap.phases.len() as u64
        );
    }

    #[test]
    fn assemble_adds_engine_and_stats_sections() {
        let mut stats = StatsCollection::new();
        let id = stats.add_metric(
            MetricSpec::new("m")
                .with_warmup(1)
                .with_calibration(100)
                .with_quantiles(&[]),
        );
        for i in 0..2000 {
            stats.record(id, 1.0 + f64::from(i % 11) * 0.01);
        }
        let rec = MemoryRecorder::new();
        let cal = CalendarStats {
            scheduled: 10,
            fired: 8,
            cancelled: 2,
            depth_high_water: 5,
            sift_steps: 17,
        };
        let snap = assemble_snapshot(&rec, Some(&stats), &cal, 8, 0.5);
        assert_eq!(snap.counters["des.events_fired"], 8);
        assert_eq!(snap.counters["des.events_cancelled"], 2);
        assert_eq!(snap.gauges["des.calendar_depth_high_water"], 5.0);
        assert!(snap.counters["stats.m.samples_kept"] > 0);
        assert!(snap.gauges.contains_key("stats.m.lag"));
        assert_eq!(snap.wall["wall_seconds"], 0.5);
        assert_eq!(snap.wall["des.events_per_second"], 16.0);
        // Wall values vanish under the determinism-comparison projection.
        assert!(snap.without_wall_times().wall.is_empty());
    }

    #[test]
    fn queue_depth_and_utilization_feed_histograms() {
        let mut tel = ClusterTelemetry::new();
        tel.note_queue_depth(3);
        tel.note_queue_depth(70); // beyond hi: lands in overflow, no panic
        tel.note_epoch_utilizations(&[0.25, 0.75]);
        let snap = tel.into_recorder().snapshot();
        assert_eq!(snap.histograms["sim.queue_depth"].count, 2);
        assert_eq!(snap.histograms["sim.server_utilization"].count, 2);
        assert_eq!(snap.gauges["sim.queue_depth_high_water"], 70.0);
        assert_eq!(snap.gauges["sim.last_epoch_utilization_mean"], 0.5);
        assert_eq!(snap.counters["sim.utilization_snapshots"], 1);
    }
}
