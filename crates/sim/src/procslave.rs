//! Process-isolated slave supervision over a checksummed IPC fabric.
//!
//! BigHouse's deployment model (Figure 3) runs slaves as *separate
//! processes on separate machines*; the thread backend in [`crate::parallel`]
//! collapses that into one address space, where a single slave abort, OOM
//! kill, or segfault destroys the whole run. This module restores the
//! process boundary: slaves run as sandboxed child OS processes (a re-exec
//! of the current binary via the hidden `bighouse __slave` entrypoint)
//! speaking a length-prefixed, FNV-1a-checksummed, versioned frame protocol
//! over stdin/stdout.
//!
//! # Frame format
//!
//! ```text
//! [u32 LE body_len][body = u8 version ++ JSON payload][u64 LE fnv1a(body)]
//! ```
//!
//! Corruption anywhere — truncation, a flipped bit, an oversized length, a
//! version skew — surfaces as [`SimError::Frame`], never a panic and never
//! a silently-accepted frame ([`read_frame`] / [`write_frame`] are public
//! precisely so the fuzz suite can attack them directly).
//!
//! # Deterministic epoch lockstep
//!
//! Both the in-thread and the process transport run the same supervisor
//! core: slaves simulate epoch by epoch, report an [`UpFrame::EpochDone`]
//! checkpoint at every boundary, and block until the master answers with a
//! [`Directive`]. The master evaluates aggregate sufficiency **only at
//! epoch barriers**, on epoch-boundary moments, so the stopping decision is
//! a pure function of (config, seeds, epoch size, slave count) — never of
//! wall-clock scheduling. A slave SIGKILLed (or aborted) mid-epoch is
//! respawned from its last checkpoint with a fresh incarnation, *re-parks*
//! at its checkpointed barrier, replays the lost partial epoch from the
//! same deterministic epoch seed, and the run's final report is
//! bit-identical to an undisturbed run on either transport.
//!
//! # Kill/respawn state machine
//!
//! ```text
//!            spawn(inc=0)                 EpochDone        Directive
//!  [FRESH] ──────────────▶ [RUNNING] ───────────────▶ [PARKED] ─────▶ [RUNNING]
//!                              │  crash/stall/SIGKILL      │ Finalize
//!                              ▼  (incarnation fenced)     ▼
//!                         [RESPAWN WAIT] ── full-jitter ──▶ spawn(inc+1), re-park
//!                              │  restarts exhausted
//!                              ▼
//!                           [DEAD]  (dropped from the merge, reported honestly)
//! ```

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use bighouse_des::SeedStream;
use bighouse_stats::{Histogram, HistogramSpec, MetricSpec, RunningStats};
use bighouse_telemetry::{MemoryRecorder, Recorder as _};

use crate::audit::{AuditConfig, AuditReport};
use crate::checkpoint::fnv1a;
use crate::cluster::ClusterSim;
use crate::config::ExperimentConfig;
use crate::error::SimError;
use crate::fastpath::AnyEngine;
use crate::parallel::{
    aggregate_sufficient, checkpoint_moments, epoch_seed, merge_finals, ParallelOutcome,
    ParallelRunner, CHUNK_EVENTS, RESTART_BACKOFF, WATCHDOG_TICK,
};
pub use crate::parallel::SlaveState;
use crate::report::{SimulationReport, TerminationReason};
use crate::runner::{run_resumable, run_until_calibrated, RunOptions};

/// Protocol version stamped into every frame body; a master and a slave
/// from different builds refuse to talk rather than mis-merge.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame body. A corrupted length prefix must not make
/// the decoder allocate gigabytes before the checksum can reject it.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Environment variable set on every spawned slave child, so tests (and
/// operators) can find stragglers: no process carrying it may survive the
/// master.
pub const SLAVE_ENV_MARKER: &str = "BIGHOUSE_PROCSLAVE";

/// How long the master waits for children to wind down cooperatively
/// before escalating to SIGKILL during final reaping.
const REAP_GRACE: Duration = Duration::from_secs(3);

/// Slave child exit codes (sysexits where one fits). The CLI forwards
/// these verbatim, and the master's telemetry distinguishes them.
pub mod exit_code {
    /// Clean shutdown: final shard delivered (or master vanished).
    pub const OK: u8 = 0;
    /// EX_DATAERR: a frame on stdin was truncated, corrupt, or version-skewed.
    pub const FRAME: u8 = 65;
    /// EX_SOFTWARE: the simulation itself failed with a typed [`crate::SimError`].
    pub const SIM: u8 = 70;
    /// EX_TEMPFAIL: a cooperative memory/CPU cap was exceeded; the master
    /// may respawn the slave from its checkpoint.
    pub const RESOURCE: u8 = 75;
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Serializes one frame to `w`: length prefix, version byte + JSON body,
/// FNV-1a checksum. Flushes so a frame is never left straddling a buffer.
///
/// # Errors
///
/// Returns [`SimError::Frame`] if the value will not encode, exceeds
/// [`MAX_FRAME_BYTES`], or the underlying write fails (a dead pipe).
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, frame: &T) -> Result<(), SimError> {
    let json = serde_json::to_vec(frame).map_err(|e| SimError::Frame {
        detail: format!("encode: {e}"),
    })?;
    let mut body = Vec::with_capacity(json.len() + 1);
    body.push(PROTOCOL_VERSION);
    body.extend_from_slice(&json);
    let len = u32::try_from(body.len()).unwrap_or(u32::MAX);
    if len > MAX_FRAME_BYTES {
        return Err(SimError::Frame {
            detail: format!("frame body of {len} bytes exceeds cap {MAX_FRAME_BYTES}"),
        });
    }
    let io_err = |e: std::io::Error| SimError::Frame {
        detail: format!("write: {e}"),
    };
    w.write_all(&len.to_le_bytes()).map_err(io_err)?;
    w.write_all(&body).map_err(io_err)?;
    w.write_all(&fnv1a(&body).to_le_bytes()).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads `buf.len()` bytes; `Ok(false)` on clean EOF **before the first
/// byte**, [`SimError::Frame`] on EOF mid-buffer (a torn frame).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<bool, SimError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(SimError::Frame {
                    detail: format!("truncated {what}: EOF after {filled} of {} bytes", buf.len()),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(SimError::Frame {
                    detail: format!("read {what}: {e}"),
                })
            }
        }
    }
    Ok(true)
}

/// Decodes the next frame from `r`. `Ok(None)` means the stream ended
/// cleanly **between** frames; every other irregularity — truncation,
/// checksum mismatch, version skew, oversized or zero length, undecodable
/// JSON — is a typed [`SimError::Frame`].
///
/// # Errors
///
/// Returns [`SimError::Frame`] as described above; never panics on
/// attacker-controlled bytes.
pub fn read_frame<R: Read, T: DeserializeOwned>(r: &mut R) -> Result<Option<T>, SimError> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_buf, "length prefix")? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(SimError::Frame {
            detail: format!("frame length {len} outside (0, {MAX_FRAME_BYTES}]"),
        });
    }
    let mut body = vec![0u8; len as usize];
    if !read_exact_or_eof(r, &mut body, "frame body")? {
        return Err(SimError::Frame {
            detail: format!("truncated frame body: EOF before {len} bytes"),
        });
    }
    let mut sum_buf = [0u8; 8];
    if !read_exact_or_eof(r, &mut sum_buf, "checksum")? {
        return Err(SimError::Frame {
            detail: "truncated frame: EOF before checksum".to_string(),
        });
    }
    let stored = u64::from_le_bytes(sum_buf);
    let computed = fnv1a(&body);
    if stored != computed {
        return Err(SimError::Frame {
            detail: format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
        });
    }
    if body[0] != PROTOCOL_VERSION {
        return Err(SimError::Frame {
            detail: format!(
                "protocol version {} (this build speaks {PROTOCOL_VERSION})",
                body[0]
            ),
        });
    }
    serde_json::from_slice(&body[1..])
        .map(Some)
        .map_err(|e| SimError::Frame {
            detail: format!("decode: {e}"),
        })
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

/// Master → slave barrier decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Directive {
    /// Simulate the next epoch.
    Continue,
    /// Stop at the current epoch boundary and deliver the final shard.
    Finalize,
}

/// Caps a slave child enforces on itself at chunk boundaries (read from
/// `/proc/self`; a hard rlimit would need libc). Exceeding a cap exits
/// with [`exit_code::RESOURCE`], which the master treats as a crash —
/// bounded respawn, not a wedged run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcLimits {
    /// Maximum resident set size in bytes.
    pub max_rss_bytes: Option<u64>,
    /// Maximum user+system CPU time in seconds (USER_HZ = 100 assumed).
    pub max_cpu_seconds: Option<f64>,
}

impl ProcLimits {
    fn armed(&self) -> bool {
        self.max_rss_bytes.is_some() || self.max_cpu_seconds.is_some()
    }
}

/// Chaos hooks for crash-safety tests: deterministic faults injected into
/// exactly one slave's **first** incarnation.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcChaos {
    /// Master SIGKILLs the slave's child mid-epoch (on the first heartbeat
    /// after its first epoch checkpoint). Thread transports treat this as
    /// [`ProcChaos::PanicAfterFirstEpoch`] — a thread cannot be killed.
    KillMidEpoch {
        /// Victim slave index.
        slave: usize,
    },
    /// The slave calls `std::process::abort()` right after its first epoch
    /// checkpoint — the failure `catch_unwind` cannot contain.
    AbortAfterFirstEpoch {
        /// Victim slave index.
        slave: usize,
    },
    /// The slave panics right after its first epoch checkpoint.
    PanicAfterFirstEpoch {
        /// Victim slave index.
        slave: usize,
    },
}

impl ProcChaos {
    fn victim(&self) -> usize {
        match *self {
            ProcChaos::KillMidEpoch { slave }
            | ProcChaos::AbortAfterFirstEpoch { slave }
            | ProcChaos::PanicAfterFirstEpoch { slave } => slave,
        }
    }

    /// Parses the `BIGHOUSE_PROC_CHAOS` environment convention
    /// (`kill:N` / `abort:N` / `panic:N`).
    #[doc(hidden)]
    pub fn from_env_str(s: &str) -> Option<ProcChaos> {
        let (kind, idx) = s.split_once(':')?;
        let slave = idx.trim().parse().ok()?;
        match kind.trim() {
            "kill" => Some(ProcChaos::KillMidEpoch { slave }),
            "abort" => Some(ProcChaos::AbortAfterFirstEpoch { slave }),
            "panic" => Some(ProcChaos::PanicAfterFirstEpoch { slave }),
            _ => None,
        }
    }
}

/// The work order a freshly spawned child receives in its hello frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum HelloJob {
    /// One lockstep slave of a parallel run.
    Lockstep {
        /// Slave index within the run.
        slave: usize,
        /// Incarnation (respawn generation) — echoed in every up-frame so
        /// the master can fence stragglers.
        incarnation: u32,
        /// The slave's unique seed (epoch seeds derive from it).
        slave_seed: u64,
        /// Events per epoch.
        epoch_events: u64,
        /// The experiment to simulate.
        config: Box<ExperimentConfig>,
        /// Master-calibrated histogram bin schemes (Figure 3 broadcast).
        bin_schemes: HashMap<String, HistogramSpec>,
        /// Checkpoint to resume from (default state for incarnation 0).
        state: SlaveState,
        /// Deliver the final shard immediately from `state`, without
        /// simulating — used when a respawn lands after wind-down began.
        winddown: bool,
        /// Child-side chaos hook (first incarnation only).
        chaos: Option<ProcChaos>,
    },
    /// A whole self-contained run (used by sweep process isolation): the
    /// child executes `run_resumable` serially and ships the report up,
    /// so the estimates stay bit-identical to an in-process attempt.
    Solo {
        /// The experiment to run.
        config: Box<ExperimentConfig>,
        /// Master seed for the run.
        master_seed: u64,
        /// Epoch granularity (also the interrupt-poll granularity).
        epoch_events: u64,
        /// When set, abort before simulating — a poison-config stand-in.
        chaos_abort: bool,
    },
}

/// Master → slave frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DownFrame {
    /// First frame on a child's stdin: identity, job, and resource caps.
    Hello {
        /// Self-enforced resource caps.
        limits: ProcLimits,
        /// The work order (boxed: it dwarfs the other variants).
        job: Box<HelloJob>,
    },
    /// Barrier decision for the slave's parked epoch.
    Directive(Directive),
    /// Cooperative wind-down: finalize from current state and exit.
    Shutdown,
}

/// Everything a finished slave delivers for the merge, plus its telemetry
/// shard. Also the unit [`merge_finals`] consumes for both backends.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FinalShard {
    /// Per-metric histograms (`None` where the metric saw no data).
    pub histograms: Vec<Option<Histogram>>,
    /// Per-metric autocorrelation lags.
    pub lags: Vec<usize>,
    /// Per-metric raw observation counts.
    pub total_observed: Vec<u64>,
    /// Events the slave simulated across completed epochs.
    pub events: u64,
    /// Merged invariant-audit report for this slave's incarnation.
    pub audit: Option<AuditReport>,
    /// The slave's own counters, merged into master telemetry.
    pub telemetry: SlaveTelemetryShard,
}

/// A slave's self-reported counters; riding the final frame keeps the
/// fabric's data flow one-directional and cheap.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SlaveTelemetryShard {
    /// Epochs completed by this incarnation.
    pub epochs: u64,
    /// Heartbeats sent by this incarnation.
    pub heartbeats: u64,
}

/// Slave → master frames. Every frame carries the sender's incarnation so
/// the master can fence messages from abandoned incarnations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum UpFrame {
    /// The slave accepted its hello and is about to simulate.
    Ready {
        /// Sender slave index.
        slave: usize,
        /// Sender incarnation.
        incarnation: u32,
    },
    /// Liveness signal, sent every chunk; feeds the stall deadline.
    Heartbeat {
        /// Sender slave index.
        slave: usize,
        /// Sender incarnation.
        incarnation: u32,
        /// Events simulated so far (cumulative, incl. restored checkpoint).
        events: u64,
    },
    /// Epoch barrier: the slave's full resumable state. The slave now
    /// blocks until the master answers with a [`Directive`].
    EpochDone {
        /// Sender slave index.
        slave: usize,
        /// Sender incarnation.
        incarnation: u32,
        /// Checkpoint at the epoch boundary.
        state: Box<SlaveState>,
        /// Whether the slave's event cap is exhausted (it cannot continue).
        exhausted: bool,
    },
    /// Terminal frame of a successful incarnation.
    Final {
        /// Sender slave index.
        slave: usize,
        /// Sender incarnation.
        incarnation: u32,
        /// The merge shard.
        shard: Box<FinalShard>,
    },
    /// The whole-run report of a [`HelloJob::Solo`] child.
    SoloReport(Box<SimulationReport>),
    /// Terminal frame of a failed incarnation: a typed error and the exit
    /// code the child is about to die with.
    Fatal {
        /// Sender slave index.
        slave: usize,
        /// Sender incarnation.
        incarnation: u32,
        /// Rendering of the error.
        error: String,
        /// The exit code the child will exit with (see [`exit_code`]).
        code: u8,
    },
}

impl UpFrame {
    fn sender(&self) -> Option<(usize, u32)> {
        match *self {
            UpFrame::Ready { slave, incarnation }
            | UpFrame::Heartbeat {
                slave, incarnation, ..
            }
            | UpFrame::EpochDone {
                slave, incarnation, ..
            }
            | UpFrame::Final {
                slave, incarnation, ..
            }
            | UpFrame::Fatal {
                slave, incarnation, ..
            } => Some((slave, incarnation)),
            UpFrame::SoloReport(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Backoff with full jitter
// ---------------------------------------------------------------------------

/// Doubling backoff with **full jitter**: a delay drawn uniformly from
/// `(0, base·2^min(attempt-1, 6)]`, deterministically from `(salt,
/// attempt)` — so respawn/retry storms decorrelate across a pool without
/// introducing nondeterminism. Floored at 1 ms so a respawn can never
/// hot-loop.
pub(crate) fn full_jitter_backoff(base: Duration, attempt: u32, salt: u64) -> Duration {
    let cap = base * 2u32.pow(attempt.saturating_sub(1).min(6));
    let mut bytes = [0u8; 12];
    bytes[..8].copy_from_slice(&salt.to_le_bytes());
    bytes[8..].copy_from_slice(&attempt.to_le_bytes());
    let frac = (fnv1a(&bytes) >> 11) as f64 / (1u64 << 53) as f64;
    cap.mul_f64(frac).max(Duration::from_millis(1))
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// How to spawn the child processes of [`ExecBackend::Processes`].
#[derive(Debug, Clone)]
pub struct ProcSlaveConfig {
    /// Binary to execute; `None` re-execs the current binary
    /// (`std::env::current_exe`).
    pub program: Option<PathBuf>,
    /// Arguments that put the binary into slave mode.
    pub args: Vec<String>,
    /// Self-enforced resource caps per slave.
    pub limits: ProcLimits,
}

impl Default for ProcSlaveConfig {
    fn default() -> Self {
        ProcSlaveConfig {
            program: None,
            args: vec!["__slave".to_string()],
            limits: ProcLimits::default(),
        }
    }
}

/// Which execution substrate [`ParallelRunner`] drives.
#[derive(Debug, Clone, Default)]
pub enum ExecBackend {
    /// Free-running threads (the original backend): fastest convergence,
    /// but the stopping decision depends on scheduling, so runs are not
    /// reproducible bit-for-bit.
    #[default]
    Threads,
    /// Deterministic epoch-lockstep threads: same protocol as
    /// [`ExecBackend::Processes`], same bit-identical results, no process
    /// boundary.
    ThreadLockstep,
    /// Sandboxed child OS processes over the checksummed frame fabric.
    Processes(ProcSlaveConfig),
}

// ---------------------------------------------------------------------------
// Slave session (shared by the in-thread and in-child slave loops)
// ---------------------------------------------------------------------------

/// The slave's half of the fabric, abstracted over thread channels vs.
/// stdio frames.
trait SlaveLink {
    /// Ships a frame to the master; `false` means the master is gone.
    fn send(&mut self, frame: UpFrame) -> bool;
    /// Blocks until the master decides the parked barrier. Wind-down
    /// (Shutdown frame, stop flag, severed link) returns `Finalize`.
    fn wait_directive(&mut self) -> Directive;
    /// Cooperative stop signal (interrupt, kill of this incarnation).
    fn should_stop(&self) -> bool;
    /// Child-side resource-cap check; `Some` means a cap was exceeded.
    fn limit_exceeded(&mut self) -> Option<String>;
}

struct SessionParams {
    slave: usize,
    incarnation: u32,
    slave_seed: u64,
    epoch_events: u64,
    config: Arc<ExperimentConfig>,
    bin_schemes: Arc<HashMap<String, HistogramSpec>>,
    state: SlaveState,
    winddown: bool,
    chaos: Option<ProcChaos>,
}

/// One incarnation of one lockstep slave, on either transport: restore the
/// checkpoint, re-park at its barrier if this is a respawn, then simulate
/// epoch by epoch, parking at every boundary until the master's directive.
fn slave_session<L: SlaveLink>(link: &mut L, p: SessionParams) -> Result<(), SimError> {
    let SessionParams {
        slave,
        incarnation,
        slave_seed,
        epoch_events,
        config,
        bin_schemes,
        mut state,
        winddown,
        chaos,
    } = p;
    let mut telemetry = SlaveTelemetryShard::default();
    // The circuit breaker and the audit report span epochs within an
    // incarnation (a resurrection restarts them — losing sweeps, never
    // samples), exactly like the thread backend.
    let mut guard = config.audit().map(AuditConfig::progress_guard);
    let mut audit_total: Option<AuditReport> = None;
    let mut audit_tripped = false;

    if !link.send(UpFrame::Ready { slave, incarnation }) {
        return Ok(());
    }

    // A respawned incarnation re-enters the barrier protocol at its
    // checkpointed epoch: the master answers Continue (a catch-up replay
    // or an already-decided barrier) or Finalize. Without the re-park a
    // respawn could run ahead of an undecided barrier and deadlock it.
    let mut run_epochs = !winddown;
    if run_epochs && incarnation > 0 {
        let exhausted = state.events >= config.max_events;
        if !link.send(UpFrame::EpochDone {
            slave,
            incarnation,
            state: Box::new(state.clone()),
            exhausted,
        }) {
            return Ok(());
        }
        if link.wait_directive() == Directive::Finalize {
            run_epochs = false;
        }
    }

    while run_epochs
        && !link.should_stop()
        && !audit_tripped
        && state.events < config.max_events
    {
        let seed = epoch_seed(slave_seed, state.epoch);
        let mut sim = ClusterSim::new_slave((*config).clone(), seed, &bin_schemes)?;
        if let Some(stats) = state.stats.take() {
            sim.restore_stats(stats)?;
        }
        let mut engine = AnyEngine::build(sim);
        let budget = epoch_events.min(config.max_events - state.events);
        let mut fired = 0u64;
        let mut drained = false;
        while !link.should_stop() && fired < budget {
            let chunk = CHUNK_EVENTS.min(budget - fired);
            let run = match guard.as_mut() {
                Some(guard) => engine.run_guarded(chunk, guard),
                None => engine.run_with_limit(chunk),
            };
            fired += run.events_fired;
            if run.stopped_by_guard || engine.simulation().audit_failed() {
                if let Some(violation) = guard.as_ref().and_then(|g| g.violation()) {
                    engine.simulation_mut().record_progress_violation(violation);
                }
                audit_tripped = true;
                break;
            }
            if run.events_fired == 0 {
                drained = true; // cannot happen with open arrivals
                break;
            }
            if let Some(what) = link.limit_exceeded() {
                let _ = link.send(UpFrame::Fatal {
                    slave,
                    incarnation,
                    error: what.clone(),
                    code: exit_code::RESOURCE,
                });
                return Err(SimError::SlaveProcess {
                    slave,
                    detail: what,
                });
            }
            telemetry.heartbeats += 1;
            if !link.send(UpFrame::Heartbeat {
                slave,
                incarnation,
                events: state.events + fired,
            }) {
                // Master gone: nothing to merge into; wind down.
                return Ok(());
            }
        }
        state.events += fired;
        let finished_epoch = fired == budget && !drained && !audit_tripped;
        let now = engine.now();
        let mut sim = engine.into_simulation();
        sim.finalize_audit(now);
        if let Some(epoch_audit) = sim.take_audit() {
            audit_total
                .get_or_insert_with(AuditReport::default)
                .merge(&epoch_audit);
        }
        state.stats = Some(sim.into_stats());
        if finished_epoch && !link.should_stop() {
            state.epoch += 1;
            telemetry.epochs += 1;
            let exhausted = state.events >= config.max_events;
            if !link.send(UpFrame::EpochDone {
                slave,
                incarnation,
                state: Box::new(state.clone()),
                exhausted,
            }) {
                return Ok(());
            }
            if incarnation == 0 && state.epoch == 1 {
                match chaos {
                    Some(ProcChaos::AbortAfterFirstEpoch { slave: victim }) if victim == slave => {
                        // The failure catch_unwind cannot contain.
                        std::process::abort();
                    }
                    Some(ProcChaos::PanicAfterFirstEpoch { slave: victim }) if victim == slave => {
                        panic!("forced slave panic (chaos hook)");
                    }
                    _ => {}
                }
            }
            if link.wait_directive() == Directive::Finalize {
                break;
            }
        } else {
            break;
        }
    }

    let (histograms, lags, total_observed) = match &state.stats {
        Some(stats) => (
            stats.iter().map(|m| m.histogram().cloned()).collect(),
            stats.iter().map(|m| m.lag()).collect(),
            stats.iter().map(|m| m.total_observed()).collect(),
        ),
        None => (Vec::new(), Vec::new(), Vec::new()),
    };
    let _ = link.send(UpFrame::Final {
        slave,
        incarnation,
        shard: Box::new(FinalShard {
            histograms,
            lags,
            total_observed,
            events: state.events,
            audit: audit_total,
            telemetry,
        }),
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// Transports (master side)
// ---------------------------------------------------------------------------

/// What the supervision loop consumes, regardless of transport.
enum SlaveEvent {
    Up(UpFrame),
    /// The slave's link died without a terminal frame: thread panicked,
    /// child exited or its stream was severed/corrupted.
    Gone { slave: usize, incarnation: u32 },
}

struct SharedCtx {
    config: Arc<ExperimentConfig>,
    bin_schemes: Arc<HashMap<String, HistogramSpec>>,
    seeds: Vec<u64>,
    epoch_events: u64,
    chaos: Option<ProcChaos>,
}

trait Transport {
    /// Spawns (or respawns) one incarnation of a slave from a checkpoint.
    fn spawn(
        &mut self,
        slave: usize,
        incarnation: u32,
        state: SlaveState,
        winddown: bool,
    ) -> Result<(), SimError>;
    /// Answers a parked slave's barrier.
    fn directive(&mut self, slave: usize, d: Directive);
    /// Cooperative wind-down signal to every live slave.
    fn interrupt_all(&mut self);
    /// Forcefully terminates one slave's current incarnation (SIGKILL for
    /// processes, flag-abandonment for threads). Always reaps.
    fn kill(&mut self, slave: usize);
    /// Waits up to `timeout` for the next event.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<SlaveEvent>;
    /// Final cleanup: cooperative wind-down, then force; joins/reaps every
    /// child so no zombie or orphan survives the run.
    fn reap(&mut self);
    /// (frames_sent, frames_received, frame_decode_failures) so far.
    fn frame_counters(&self) -> (u64, u64, u64);
}

// --- threads ---------------------------------------------------------------

struct ThreadSlot {
    directive_tx: channel::Sender<Directive>,
    inc_stop: Arc<AtomicBool>,
}

struct ThreadTransport {
    ctx: Arc<SharedCtx>,
    tx: channel::Sender<SlaveEvent>,
    rx: channel::Receiver<SlaveEvent>,
    global_stop: Arc<AtomicBool>,
    slots: Vec<Option<ThreadSlot>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    forced_panic: Option<usize>,
    persistent_panic: Option<usize>,
}

struct ThreadLink {
    tx: channel::Sender<SlaveEvent>,
    directive_rx: channel::Receiver<Directive>,
    global_stop: Arc<AtomicBool>,
    inc_stop: Arc<AtomicBool>,
}

impl SlaveLink for ThreadLink {
    fn send(&mut self, frame: UpFrame) -> bool {
        self.tx.send(SlaveEvent::Up(frame)).is_ok()
    }

    fn wait_directive(&mut self) -> Directive {
        loop {
            if self.should_stop() {
                return Directive::Finalize;
            }
            match self.directive_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(d) => return d,
                Err(channel::RecvTimeoutError::Timeout) => {}
                Err(channel::RecvTimeoutError::Disconnected) => return Directive::Finalize,
            }
        }
    }

    fn should_stop(&self) -> bool {
        self.global_stop.load(Ordering::Relaxed) || self.inc_stop.load(Ordering::Relaxed)
    }

    fn limit_exceeded(&mut self) -> Option<String> {
        None // caps are meaningful only across a process boundary
    }
}

impl ThreadTransport {
    fn new(ctx: Arc<SharedCtx>, slaves: usize, runner: &ParallelRunner) -> Self {
        let (tx, rx) = channel::unbounded();
        ThreadTransport {
            ctx,
            tx,
            rx,
            global_stop: Arc::new(AtomicBool::new(false)),
            slots: (0..slaves).map(|_| None).collect(),
            handles: Vec::new(),
            forced_panic: runner.forced_panic,
            persistent_panic: runner.persistent_panic,
        }
    }
}

impl Transport for ThreadTransport {
    fn spawn(
        &mut self,
        slave: usize,
        incarnation: u32,
        state: SlaveState,
        winddown: bool,
    ) -> Result<(), SimError> {
        let (directive_tx, directive_rx) = channel::unbounded();
        let inc_stop = Arc::new(AtomicBool::new(false));
        self.slots[slave] = Some(ThreadSlot {
            directive_tx,
            inc_stop: Arc::clone(&inc_stop),
        });
        // A thread cannot be SIGKILLed or survive an abort; in-process the
        // kill/abort chaos hooks degrade to a panic at the same point.
        let chaos = self.ctx.chaos.map(|c| match c {
            ProcChaos::KillMidEpoch { slave } | ProcChaos::AbortAfterFirstEpoch { slave } => {
                ProcChaos::PanicAfterFirstEpoch { slave }
            }
            other => other,
        });
        let panic_at_spawn = (self.forced_panic == Some(slave) && incarnation == 0)
            || self.persistent_panic == Some(slave);
        let params = SessionParams {
            slave,
            incarnation,
            slave_seed: self.ctx.seeds[slave],
            epoch_events: self.ctx.epoch_events,
            config: Arc::clone(&self.ctx.config),
            bin_schemes: Arc::clone(&self.ctx.bin_schemes),
            state,
            winddown,
            chaos,
        };
        let tx = self.tx.clone();
        let gone_tx = self.tx.clone();
        let global_stop = Arc::clone(&self.global_stop);
        self.handles.push(std::thread::spawn(move || {
            let mut link = ThreadLink {
                tx,
                directive_rx,
                global_stop,
                inc_stop,
            };
            let result = catch_unwind(AssertUnwindSafe(|| {
                if panic_at_spawn {
                    panic!("forced slave panic (test hook)");
                }
                slave_session(&mut link, params)
            }));
            if !matches!(result, Ok(Ok(()))) {
                let _ = gone_tx.send(SlaveEvent::Gone { slave, incarnation });
            }
        }));
        Ok(())
    }

    fn directive(&mut self, slave: usize, d: Directive) {
        if let Some(slot) = &self.slots[slave] {
            let _ = slot.directive_tx.send(d);
        }
    }

    fn interrupt_all(&mut self) {
        self.global_stop.store(true, Ordering::Relaxed);
    }

    fn kill(&mut self, slave: usize) {
        // Abandon the incarnation: its stop flag makes it exit at the next
        // chunk or directive wait, and its messages are already fenced.
        if let Some(slot) = self.slots[slave].take() {
            slot.inc_stop.store(true, Ordering::Relaxed);
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<SlaveEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    fn reap(&mut self) {
        self.global_stop.store(true, Ordering::Relaxed);
        self.slots.iter_mut().for_each(|s| *s = None);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn frame_counters(&self) -> (u64, u64, u64) {
        (0, 0, 0) // in-process channels: no frames on a wire
    }
}

// --- processes -------------------------------------------------------------

struct ProcSlot {
    child: Child,
    stdin: std::process::ChildStdin,
    reader: std::thread::JoinHandle<()>,
}

struct ProcessTransport {
    ctx: Arc<SharedCtx>,
    cfg: ProcSlaveConfig,
    tx: channel::Sender<SlaveEvent>,
    rx: channel::Receiver<SlaveEvent>,
    slots: Vec<Option<ProcSlot>>,
    frames_sent: u64,
    frames_received: Arc<AtomicU64>,
    decode_failures: Arc<AtomicU64>,
}

impl ProcessTransport {
    fn new(ctx: Arc<SharedCtx>, slaves: usize, cfg: ProcSlaveConfig) -> Self {
        let (tx, rx) = channel::unbounded();
        ProcessTransport {
            ctx,
            cfg,
            tx,
            rx,
            slots: (0..slaves).map(|_| None).collect(),
            frames_sent: 0,
            frames_received: Arc::new(AtomicU64::new(0)),
            decode_failures: Arc::new(AtomicU64::new(0)),
        }
    }

    fn send_down(&mut self, slave: usize, frame: &DownFrame) {
        if let Some(slot) = &mut self.slots[slave] {
            // A dead child's pipe raises EPIPE; its Gone event is already
            // in flight, so the failed write is deliberately ignored.
            if write_frame(&mut slot.stdin, frame).is_ok() {
                self.frames_sent += 1;
            }
        }
    }
}

impl Transport for ProcessTransport {
    fn spawn(
        &mut self,
        slave: usize,
        incarnation: u32,
        state: SlaveState,
        winddown: bool,
    ) -> Result<(), SimError> {
        let program = match &self.cfg.program {
            Some(p) => p.clone(),
            None => std::env::current_exe().map_err(|e| SimError::SlaveProcess {
                slave,
                detail: format!("current_exe: {e}"),
            })?,
        };
        let mut child = Command::new(&program)
            .args(&self.cfg.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .env(SLAVE_ENV_MARKER, std::process::id().to_string())
            .spawn()
            .map_err(|e| SimError::SlaveProcess {
                slave,
                detail: format!("spawn {}: {e}", program.display()),
            })?;
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let hello = DownFrame::Hello {
            limits: self.cfg.limits,
            job: Box::new(HelloJob::Lockstep {
                slave,
                incarnation,
                slave_seed: self.ctx.seeds[slave],
                epoch_events: self.ctx.epoch_events,
                config: Box::new((*self.ctx.config).clone()),
                bin_schemes: (*self.ctx.bin_schemes).clone(),
                state,
                winddown,
                chaos: self.ctx.chaos.filter(|c| incarnation == 0 && c.victim() == slave),
            }),
        };
        if let Err(e) = write_frame(&mut stdin, &hello) {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
        self.frames_sent += 1;
        let tx = self.tx.clone();
        let frames = Arc::clone(&self.frames_received);
        let failures = Arc::clone(&self.decode_failures);
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(stdout);
            loop {
                match read_frame::<_, UpFrame>(&mut r) {
                    Ok(Some(frame)) => {
                        frames.fetch_add(1, Ordering::Relaxed);
                        if tx.send(SlaveEvent::Up(frame)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => {
                        let _ = tx.send(SlaveEvent::Gone { slave, incarnation });
                        break;
                    }
                    Err(_) => {
                        // Corruption on the pipe: indistinguishable from a
                        // crashing child as far as supervision goes.
                        failures.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(SlaveEvent::Gone { slave, incarnation });
                        break;
                    }
                }
            }
        });
        self.slots[slave] = Some(ProcSlot {
            child,
            stdin,
            reader,
        });
        Ok(())
    }

    fn directive(&mut self, slave: usize, d: Directive) {
        self.send_down(slave, &DownFrame::Directive(d));
    }

    fn interrupt_all(&mut self) {
        for slave in 0..self.slots.len() {
            self.send_down(slave, &DownFrame::Shutdown);
        }
    }

    fn kill(&mut self, slave: usize) {
        if let Some(mut slot) = self.slots[slave].take() {
            let _ = slot.child.kill(); // SIGKILL (no-op if already exited)
            let _ = slot.child.wait(); // reap: no zombies
            drop(slot.stdin);
            let _ = slot.reader.join(); // EOF after the kill ends it
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<SlaveEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    fn reap(&mut self) {
        // Cooperative first: children that already sent their Final exit
        // on their own; stragglers get Shutdown and a grace period.
        self.interrupt_all();
        let deadline = Instant::now() + REAP_GRACE;
        loop {
            let mut live = 0;
            for slot in self.slots.iter_mut().flatten() {
                match slot.child.try_wait() {
                    Ok(Some(_)) => {}
                    _ => live += 1,
                }
            }
            if live == 0 || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Escalate, then reap unconditionally: `wait` after `kill` cannot
        // leave a zombie behind.
        for slave in 0..self.slots.len() {
            self.kill(slave);
        }
    }

    fn frame_counters(&self) -> (u64, u64, u64) {
        (
            self.frames_sent,
            self.frames_received.load(Ordering::Relaxed),
            self.decode_failures.load(Ordering::Relaxed),
        )
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        // Last line of defense (e.g. an early `?` return in the
        // supervisor): never leak a child past the master's lifetime.
        for slave in 0..self.slots.len() {
            self.kill(slave);
        }
    }
}

// ---------------------------------------------------------------------------
// The lockstep supervisor (master side)
// ---------------------------------------------------------------------------

struct Barrier {
    /// Highest epoch index for which a directive has been decided.
    decided: u64,
    /// Once set, every barrier from this epoch on resolves to Finalize.
    finalize_at: Option<u64>,
    /// Per-slave parked epoch (an EpochDone awaiting its directive).
    parked: Vec<Option<u64>>,
    /// Per-slave "cannot continue" flag from its latest EpochDone.
    exhausted: Vec<bool>,
}

pub(crate) fn run_lockstep(
    runner: &ParallelRunner,
    master_seed: u64,
    proc_cfg: Option<&ProcSlaveConfig>,
) -> Result<ParallelOutcome, SimError> {
    let start = Instant::now();
    let (bin_schemes, master_events) = run_until_calibrated(&runner.config, master_seed)?;
    let specs: Vec<MetricSpec> = runner
        .config
        .metric_specs()
        .into_iter()
        .map(|(_, spec)| spec)
        .collect();
    // Identical seed derivation to the free-running thread backend, so the
    // sample pools are comparable across all three backends.
    let mut seed_stream = SeedStream::new(master_seed ^ 0x5A5A_5A5A_5A5A_5A5A);
    let seeds: Vec<u64> = (0..runner.slaves).map(|_| seed_stream.next_seed()).collect();
    let ctx = Arc::new(SharedCtx {
        config: Arc::new(runner.config.clone()),
        bin_schemes: Arc::new(bin_schemes),
        seeds,
        epoch_events: runner.slave_epoch_events,
        chaos: runner.proc_chaos,
    });
    match proc_cfg {
        Some(cfg) => {
            let transport = ProcessTransport::new(Arc::clone(&ctx), runner.slaves, cfg.clone());
            supervise(runner, &specs, transport, master_events, start)
        }
        None => {
            let transport = ThreadTransport::new(Arc::clone(&ctx), runner.slaves, runner);
            supervise(runner, &specs, transport, master_events, start)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn supervise<T: Transport>(
    runner: &ParallelRunner,
    specs: &[MetricSpec],
    mut transport: T,
    master_events: u64,
    start: Instant,
) -> Result<ParallelOutcome, SimError> {
    let slaves = runner.slaves;
    let mut outcome = ParallelOutcome {
        estimates: Vec::new(),
        converged: false,
        termination: TerminationReason::Deadline,
        master_calibration_events: master_events,
        slave_events: vec![0; slaves],
        dead_slaves: Vec::new(),
        resurrections: 0,
        watchdog_fired: false,
        wall_seconds: 0.0,
        audit: None,
        telemetry: None,
    };
    let mut sup = LockstepSupervision::new(slaves, runner.max_restarts);
    let mut barrier = Barrier {
        decided: 0,
        finalize_at: None,
        parked: vec![None; slaves],
        exhausted: vec![false; slaves],
    };
    let mut latest: Vec<Vec<Option<RunningStats>>> = vec![vec![None; specs.len()]; slaves];
    let mut shards: Vec<Option<Box<FinalShard>>> = (0..slaves).map(|_| None).collect();
    let mut interrupted = false;
    let mut stop_requested = false;
    let mut cap_kills = 0u64;
    // The master-side kill chaos arms after the victim's first epoch
    // checkpoint and fires on its next heartbeat — genuinely mid-epoch.
    let kill_chaos_victim = match runner.proc_chaos {
        Some(ProcChaos::KillMidEpoch { slave }) => Some(slave),
        _ => None,
    };
    let mut kill_chaos_armed = false;
    let mut kill_chaos_fired = false;

    let deadline = runner
        .watchdog
        .map(|s| start + Duration::from_secs_f64(s));

    for slave in 0..slaves {
        if transport
            .spawn(slave, 0, SlaveState::default(), false)
            .is_err()
        {
            sup.record_death(slave, &mut barrier, &mut latest, specs, &mut outcome);
        }
    }

    while (0..slaves).any(|s| !sup.settled(s)) {
        let event = transport.recv_timeout(WATCHDOG_TICK);

        if let Some(flag) = &runner.interrupt {
            if !interrupted && flag.load(Ordering::Relaxed) {
                interrupted = true;
                stop_requested = true;
                transport.interrupt_all();
            }
        }
        if let Some(d) = deadline {
            if !outcome.watchdog_fired && !stop_requested && Instant::now() >= d {
                outcome.watchdog_fired = true;
                stop_requested = true;
                transport.interrupt_all();
            }
        }

        match event {
            None => {}
            Some(SlaveEvent::Up(frame)) => {
                let Some((slave, incarnation)) = frame.sender() else {
                    continue; // SoloReport has no business in a lockstep run
                };
                if slave >= slaves
                    || incarnation != sup.incarnations[slave]
                    || sup.settled(slave)
                {
                    continue; // fenced: a stale or nonsensical incarnation
                }
                sup.last_heard[slave] = Instant::now();
                match frame {
                    UpFrame::Ready { .. } => {}
                    UpFrame::Heartbeat { .. } => {
                        if kill_chaos_victim == Some(slave)
                            && kill_chaos_armed
                            && !kill_chaos_fired
                            && incarnation == 0
                        {
                            kill_chaos_fired = true;
                            transport.kill(slave);
                            sup.record_death(slave, &mut barrier, &mut latest, specs, &mut outcome);
                            try_decide(
                                &mut barrier,
                                &sup,
                                &mut latest,
                                specs,
                                &mut outcome,
                                stop_requested,
                                &mut transport,
                            );
                        }
                    }
                    UpFrame::EpochDone {
                        state, exhausted, ..
                    } => {
                        let completed = state.epoch;
                        sup.checkpoints[slave] = (*state).clone();
                        latest[slave] = checkpoint_moments(&state, specs.len());
                        barrier.exhausted[slave] = exhausted;
                        if kill_chaos_victim == Some(slave) && incarnation == 0 {
                            kill_chaos_armed = true;
                        }
                        if let Some(n) = barrier.finalize_at {
                            let d = if completed >= n {
                                Directive::Finalize
                            } else {
                                Directive::Continue
                            };
                            transport.directive(slave, d);
                        } else if completed <= barrier.decided {
                            // A respawn catching up through already-decided
                            // barriers (deterministic replay).
                            transport.directive(slave, Directive::Continue);
                        } else {
                            barrier.parked[slave] = Some(completed);
                            try_decide(
                                &mut barrier,
                                &sup,
                                &mut latest,
                                specs,
                                &mut outcome,
                                stop_requested,
                                &mut transport,
                            );
                        }
                    }
                    UpFrame::Final { shard, .. } => {
                        sup.finished[slave] = true;
                        barrier.parked[slave] = None;
                        if shard.audit.as_ref().is_some_and(|a| !a.passed()) && !stop_requested {
                            // One slave's broken invariants poison the
                            // merge; wind everyone down now.
                            stop_requested = true;
                            transport.interrupt_all();
                        }
                        shards[slave] = Some(shard);
                        try_decide(
                            &mut barrier,
                            &sup,
                            &mut latest,
                            specs,
                            &mut outcome,
                            stop_requested,
                            &mut transport,
                        );
                    }
                    UpFrame::Fatal { code, .. } => {
                        if code == exit_code::RESOURCE {
                            cap_kills += 1;
                        }
                        transport.kill(slave);
                        sup.record_death(slave, &mut barrier, &mut latest, specs, &mut outcome);
                        try_decide(
                            &mut barrier,
                            &sup,
                            &mut latest,
                            specs,
                            &mut outcome,
                            stop_requested,
                            &mut transport,
                        );
                    }
                    UpFrame::SoloReport(_) => unreachable!("filtered above"),
                }
            }
            Some(SlaveEvent::Gone { slave, incarnation })
                if slave < slaves && incarnation == sup.incarnations[slave] && !sup.settled(slave) =>
            {
                transport.kill(slave); // reap whatever is left
                sup.record_death(slave, &mut barrier, &mut latest, specs, &mut outcome);
                try_decide(
                    &mut barrier,
                    &sup,
                    &mut latest,
                    specs,
                    &mut outcome,
                    stop_requested,
                    &mut transport,
                );
            }
            Some(SlaveEvent::Gone { .. }) => {} // stale incarnation or already settled
        }

        // Stall watchdog: a slave the master has not heard from in too
        // long is presumed wedged; SIGKILL it (processes) or abandon the
        // incarnation (threads) and schedule a resurrection.
        if let Some(timeout) = runner.slave_stall_timeout {
            let now = Instant::now();
            for slave in 0..slaves {
                if !sup.settled(slave)
                    && sup.respawn_at[slave].is_none()
                    && barrier.parked[slave].is_none()
                    && now.duration_since(sup.last_heard[slave]) > timeout
                {
                    transport.kill(slave);
                    sup.record_death(slave, &mut barrier, &mut latest, specs, &mut outcome);
                    try_decide(
                        &mut barrier,
                        &sup,
                        &mut latest,
                        specs,
                        &mut outcome,
                        stop_requested,
                        &mut transport,
                    );
                }
            }
        }

        // Launch due resurrections. Respawns proceed even after stop: a
        // resurrected slave finalizes from its restored checkpoint, so its
        // sample pool stays in the merge.
        let now = Instant::now();
        for slave in 0..slaves {
            if sup.respawn_at[slave].is_some_and(|at| now >= at) {
                sup.respawn_at[slave] = None;
                sup.last_heard[slave] = now;
                outcome.resurrections += 1;
                let state = sup.checkpoints[slave].clone();
                // If wind-down already began (or the run finalized at an
                // epoch the checkpoint has reached), the respawn must not
                // simulate past the decided trajectory.
                let winddown = stop_requested
                    || barrier
                        .finalize_at
                        .is_some_and(|n| state.epoch >= n);
                if transport
                    .spawn(slave, sup.incarnations[slave], state, winddown)
                    .is_err()
                {
                    sup.record_death(slave, &mut barrier, &mut latest, specs, &mut outcome);
                    try_decide(
                        &mut barrier,
                        &sup,
                        &mut latest,
                        specs,
                        &mut outcome,
                        stop_requested,
                        &mut transport,
                    );
                }
            }
        }
    }

    transport.reap();

    outcome.estimates = merge_finals(specs, &shards, &mut outcome.slave_events);
    for shard in shards.iter().flatten() {
        if let Some(audit) = &shard.audit {
            outcome
                .audit
                .get_or_insert_with(AuditReport::default)
                .merge(audit);
        }
    }
    outcome.dead_slaves.sort_unstable();
    if outcome.dead_slaves.len() == slaves {
        return Err(SimError::NoSurvivingSlaves {
            panicked: outcome.dead_slaves.len(),
        });
    }
    let audit_failed = outcome.audit.as_ref().is_some_and(|a| !a.passed());
    if audit_failed {
        outcome.converged = false;
    }
    outcome.termination = if audit_failed {
        if outcome.audit.as_ref().is_some_and(AuditReport::livelocked) {
            TerminationReason::Livelock
        } else {
            TerminationReason::AuditViolation
        }
    } else if interrupted {
        TerminationReason::Interrupted
    } else if outcome.converged {
        TerminationReason::Converged
    } else {
        TerminationReason::Deadline
    };
    outcome.wall_seconds = start.elapsed().as_secs_f64();
    if runner.config.telemetry_enabled() {
        let (sent, received, decode_failures) = transport.frame_counters();
        let mut rec = MemoryRecorder::new();
        rec.counter_add("parallel.slaves", slaves as u64);
        rec.counter_add(
            "parallel.master_calibration_events",
            outcome.master_calibration_events,
        );
        rec.counter_add("parallel.resurrections", outcome.resurrections);
        rec.counter_add("parallel.dead_slaves", outcome.dead_slaves.len() as u64);
        rec.counter_add("procslave.frames_sent", sent);
        rec.counter_add("procslave.frames_received", received);
        rec.counter_add("procslave.frame_decode_failures", decode_failures);
        rec.counter_add("procslave.respawns", outcome.resurrections);
        rec.counter_add("procslave.cap_kills", cap_kills);
        rec.counter_add(
            "procslave.slave_epochs",
            shards
                .iter()
                .flatten()
                .map(|s| s.telemetry.epochs)
                .sum::<u64>(),
        );
        rec.counter_add(
            "procslave.slave_heartbeats",
            shards
                .iter()
                .flatten()
                .map(|s| s.telemetry.heartbeats)
                .sum::<u64>(),
        );
        rec.gauge_set(
            "parallel.slave_events_total",
            outcome.slave_events.iter().sum::<u64>() as f64,
        );
        rec.wall_set("wall_seconds", outcome.wall_seconds);
        let mut snap = rec.snapshot();
        for (i, &events) in outcome.slave_events.iter().enumerate() {
            snap.counters
                .insert(format!("parallel.slave{i}.events"), events);
        }
        outcome.telemetry = Some(snap);
    }
    Ok(outcome)
}

/// Lockstep supervision bookkeeping (a sibling of the thread backend's
/// `Supervision`, extended with barrier-aware death handling).
struct LockstepSupervision {
    incarnations: Vec<u32>,
    restarts_left: Vec<u32>,
    checkpoints: Vec<SlaveState>,
    respawn_at: Vec<Option<Instant>>,
    finished: Vec<bool>,
    dead: Vec<bool>,
    last_heard: Vec<Instant>,
    max_restarts: u32,
}

impl LockstepSupervision {
    fn new(slaves: usize, max_restarts: u32) -> Self {
        let now = Instant::now();
        LockstepSupervision {
            incarnations: vec![0; slaves],
            restarts_left: vec![max_restarts; slaves],
            checkpoints: vec![SlaveState::default(); slaves],
            respawn_at: vec![None; slaves],
            finished: vec![false; slaves],
            dead: vec![false; slaves],
            last_heard: vec![now; slaves],
            max_restarts,
        }
    }

    fn settled(&self, slave: usize) -> bool {
        self.finished[slave] || self.dead[slave]
    }

    /// One observed death: fence the incarnation, then either schedule a
    /// full-jitter-backoff resurrection from the last checkpoint or mark
    /// the slave permanently dead.
    fn record_death(
        &mut self,
        slave: usize,
        barrier: &mut Barrier,
        latest: &mut [Vec<Option<RunningStats>>],
        specs: &[MetricSpec],
        outcome: &mut ParallelOutcome,
    ) {
        self.incarnations[slave] += 1;
        barrier.parked[slave] = None;
        if self.restarts_left[slave] > 0 {
            self.restarts_left[slave] -= 1;
            let attempt = self.max_restarts - self.restarts_left[slave]; // 1-based
            let backoff = full_jitter_backoff(RESTART_BACKOFF, attempt, slave as u64);
            self.respawn_at[slave] = Some(Instant::now() + backoff);
            latest[slave] = checkpoint_moments(&self.checkpoints[slave], specs.len());
        } else {
            self.dead[slave] = true;
            outcome.dead_slaves.push(slave);
            latest[slave] = vec![None; specs.len()];
            if outcome.converged && !aggregate_sufficient(specs, latest) {
                outcome.converged = false;
            }
        }
    }
}

/// Completes the pending barrier if every live participant has parked:
/// evaluates aggregate sufficiency on epoch-boundary moments (the
/// deterministic stopping rule) and broadcasts the directive.
fn try_decide<T: Transport>(
    barrier: &mut Barrier,
    sup: &LockstepSupervision,
    latest: &mut [Vec<Option<RunningStats>>],
    specs: &[MetricSpec],
    outcome: &mut ParallelOutcome,
    stop_requested: bool,
    transport: &mut T,
) {
    if barrier.finalize_at.is_some() || stop_requested {
        // Finalization is already broadcast per-EpochDone; wind-down is
        // driven by Shutdown frames.
        return;
    }
    let next = barrier.decided + 1;
    let participants: Vec<usize> = (0..sup.incarnations.len())
        .filter(|&s| !sup.settled(s))
        .collect();
    if participants.is_empty() || !participants.iter().all(|&s| barrier.parked[s] == Some(next)) {
        return;
    }
    let sufficient = aggregate_sufficient(specs, latest);
    let all_exhausted = participants.iter().all(|&s| barrier.exhausted[s]);
    barrier.decided = next;
    let d = if sufficient || all_exhausted {
        outcome.converged = sufficient;
        barrier.finalize_at = Some(next);
        Directive::Finalize
    } else {
        Directive::Continue
    };
    for &slave in &participants {
        barrier.parked[slave] = None;
        transport.directive(slave, d);
    }
}

// ---------------------------------------------------------------------------
// The child entrypoint
// ---------------------------------------------------------------------------

struct ChildLink {
    stdout: std::io::Stdout,
    directive_rx: channel::Receiver<Directive>,
    stop: Arc<AtomicBool>,
    limits: ProcLimits,
}

impl SlaveLink for ChildLink {
    fn send(&mut self, frame: UpFrame) -> bool {
        let mut out = self.stdout.lock();
        write_frame(&mut out, &frame).is_ok()
    }

    fn wait_directive(&mut self) -> Directive {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Directive::Finalize;
            }
            match self.directive_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(d) => return d,
                Err(channel::RecvTimeoutError::Timeout) => {}
                Err(channel::RecvTimeoutError::Disconnected) => return Directive::Finalize,
            }
        }
    }

    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn limit_exceeded(&mut self) -> Option<String> {
        check_limits(&self.limits)
    }
}

/// Cooperative cap check against `/proc/self` (Linux only; a no-op where
/// procfs is absent). Checked at chunk boundaries — coarse, but it needs
/// no libc and the master treats an exceeded cap exactly like a crash.
fn check_limits(limits: &ProcLimits) -> Option<String> {
    if !limits.armed() || !cfg!(target_os = "linux") {
        return None;
    }
    if let Some(cap) = limits.max_rss_bytes {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        let rss = resident_pages * 4096;
        if rss > cap {
            return Some(format!("resident set {rss} B exceeds cap {cap} B"));
        }
    }
    if let Some(cap) = limits.max_cpu_seconds {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Fields after the parenthesized comm (which may contain spaces).
        let after = stat.rsplit_once(')')?.1;
        let fields: Vec<&str> = after.split_whitespace().collect();
        let utime: u64 = fields.get(11)?.parse().ok()?;
        let stime: u64 = fields.get(12)?.parse().ok()?;
        let cpu = (utime + stime) as f64 / 100.0; // USER_HZ = 100
        if cpu > cap {
            return Some(format!("CPU time {cpu:.2} s exceeds cap {cap:.2} s"));
        }
    }
    None
}

/// The hidden `bighouse __slave` entrypoint: reads its hello frame from
/// stdin, runs the job, streams frames to stdout, and exits with a mapped
/// code ([`exit_code`]). EOF on stdin — the master died — winds the child
/// down, so a SIGKILLed master leaves no orphans behind.
///
/// Deliberately infallible at the API level: every failure maps to an
/// exit code, because a slave has nobody to propagate an `Err` to.
#[must_use]
pub fn slave_main() -> u8 {
    // `Stdin` (not its `!Send` lock) moves into the watcher thread below;
    // it buffers internally, so framing survives the handoff.
    let mut stdin = std::io::stdin();
    let (limits, job) = match read_frame::<_, DownFrame>(&mut stdin) {
        Ok(Some(DownFrame::Hello { limits, job })) => (limits, job),
        Ok(_) => return exit_code::FRAME, // EOF or a non-hello first frame
        Err(_) => return exit_code::FRAME,
    };

    // The stdin watcher: directives feed the session's barrier waits;
    // Shutdown, EOF, or corruption all raise the stop flag.
    let (directive_tx, directive_rx) = channel::unbounded();
    let stop = Arc::new(AtomicBool::new(false));
    let frame_poison = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        let frame_poison = Arc::clone(&frame_poison);
        std::thread::spawn(move || {
            loop {
                match read_frame::<_, DownFrame>(&mut stdin) {
                    Ok(Some(DownFrame::Directive(d))) => {
                        if directive_tx.send(d).is_err() {
                            break;
                        }
                    }
                    Ok(Some(DownFrame::Shutdown)) | Ok(Some(DownFrame::Hello { .. })) | Ok(None) => {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    Err(_) => {
                        frame_poison.store(true, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
        });
    }

    let code = match *job {
        HelloJob::Lockstep {
            slave,
            incarnation,
            slave_seed,
            epoch_events,
            config,
            bin_schemes,
            state,
            winddown,
            chaos,
        } => {
            let mut link = ChildLink {
                stdout: std::io::stdout(),
                directive_rx,
                stop: Arc::clone(&stop),
                limits,
            };
            let params = SessionParams {
                slave,
                incarnation,
                slave_seed,
                epoch_events,
                config: Arc::new(*config),
                bin_schemes: Arc::new(bin_schemes),
                state,
                winddown,
                chaos,
            };
            match slave_session(&mut link, params) {
                Ok(()) => exit_code::OK,
                Err(SimError::SlaveProcess { .. }) => exit_code::RESOURCE,
                Err(e) => {
                    let _ = link.send(UpFrame::Fatal {
                        slave,
                        incarnation,
                        error: e.to_string(),
                        code: exit_code::SIM,
                    });
                    exit_code::SIM
                }
            }
        }
        HelloJob::Solo {
            config,
            master_seed,
            epoch_events,
            chaos_abort,
        } => {
            if chaos_abort {
                std::process::abort();
            }
            let opts = RunOptions {
                epoch_events,
                interrupt: Some(Arc::clone(&stop)),
                ..RunOptions::default()
            };
            match run_resumable(&config, master_seed, &opts) {
                Ok(report) => {
                    let mut out = std::io::stdout().lock();
                    match write_frame(&mut out, &UpFrame::SoloReport(Box::new(report))) {
                        Ok(()) => exit_code::OK,
                        Err(_) => exit_code::FRAME,
                    }
                }
                Err(e) => {
                    let mut out = std::io::stdout().lock();
                    let _ = write_frame(
                        &mut out,
                        &UpFrame::Fatal {
                            slave: 0,
                            incarnation: 0,
                            error: e.to_string(),
                            code: exit_code::SIM,
                        },
                    );
                    exit_code::SIM
                }
            }
        }
    };
    if frame_poison.load(Ordering::Relaxed) {
        return exit_code::FRAME;
    }
    code
}

// ---------------------------------------------------------------------------
// Solo child runs (sweep process isolation)
// ---------------------------------------------------------------------------

/// Runs one whole experiment in a sandboxed child process and returns its
/// report — estimates bit-identical to an in-process `run_resumable` with
/// the same seed and epoch size. Used by `run_sweep` so a poison config
/// can segfault or abort without taking its neighbors down.
///
/// On cancellation (`cancel` set), a Shutdown frame is written and the
/// child gets [`REAP_GRACE`] to wind down before SIGKILL. The child is
/// always reaped.
///
/// # Errors
///
/// [`SimError::SlaveProcess`] if the child dies without a report (crash,
/// abort, kill) or its stream is corrupt; [`SimError::InvalidConfig`] and
/// friends pass through from the child's own typed failure.
pub fn run_solo_in_child(
    config: &ExperimentConfig,
    master_seed: u64,
    epoch_events: u64,
    proc_cfg: &ProcSlaveConfig,
    cancel: Option<&AtomicBool>,
    chaos_abort: bool,
) -> Result<SimulationReport, SimError> {
    let program = match &proc_cfg.program {
        Some(p) => p.clone(),
        None => std::env::current_exe().map_err(|e| SimError::SlaveProcess {
            slave: 0,
            detail: format!("current_exe: {e}"),
        })?,
    };
    let mut child = Command::new(&program)
        .args(&proc_cfg.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .env(SLAVE_ENV_MARKER, std::process::id().to_string())
        .spawn()
        .map_err(|e| SimError::SlaveProcess {
            slave: 0,
            detail: format!("spawn {}: {e}", program.display()),
        })?;
    // Reap on every exit path below.
    struct Reaper<'a>(&'a mut Child);
    impl Drop for Reaper<'_> {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }
    let mut stdin = child.stdin.take().expect("stdin was piped");
    let stdout = child.stdout.take().expect("stdout was piped");
    let reaper = Reaper(&mut child);
    write_frame(
        &mut stdin,
        &DownFrame::Hello {
            limits: proc_cfg.limits,
            job: Box::new(HelloJob::Solo {
                config: Box::new(config.clone()),
                master_seed,
                epoch_events,
                chaos_abort,
            }),
        },
    )?;

    // Read the child's report on a helper thread so this thread can watch
    // the cancel flag and escalate to SIGKILL after the grace period.
    let (tx, rx) = channel::unbounded();
    let reader = std::thread::spawn(move || {
        let mut r = BufReader::new(stdout);
        let _ = tx.send(read_frame::<_, UpFrame>(&mut r));
    });
    let mut cancel_sent: Option<Instant> = None;
    let outcome = loop {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(result) => break result,
            Err(channel::RecvTimeoutError::Disconnected) => {
                break Err(SimError::SlaveProcess {
                    slave: 0,
                    detail: "reader thread died".to_string(),
                })
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) && cancel_sent.is_none() {
                    let _ = write_frame(&mut stdin, &DownFrame::Shutdown);
                    cancel_sent = Some(Instant::now());
                }
                if cancel_sent.is_some_and(|at| at.elapsed() > REAP_GRACE) {
                    // The child ignored the cooperative wind-down (wedged
                    // mid-epoch, livelocked…): hard-kill. The Reaper
                    // collects the corpse.
                    break Err(SimError::SlaveProcess {
                        slave: 0,
                        detail: "killed after cancellation grace period".to_string(),
                    });
                }
            }
        }
    };
    drop(stdin);
    drop(reaper); // kill (no-op if exited) + wait: reaped before status read
    let status = child.wait().map_err(|e| SimError::SlaveProcess {
        slave: 0,
        detail: format!("wait: {e}"),
    })?;
    let _ = reader.join();
    match outcome {
        Ok(Some(UpFrame::SoloReport(report))) => Ok(*report),
        Ok(Some(UpFrame::Fatal { error, .. })) => Err(SimError::SlaveProcess {
            slave: 0,
            detail: format!("child failed: {error}"),
        }),
        Ok(Some(_)) => Err(SimError::Frame {
            detail: "unexpected frame from solo child".to_string(),
        }),
        Ok(None) => Err(SimError::SlaveProcess {
            slave: 0,
            detail: format!("child exited without a report ({status})"),
        }),
        Err(SimError::SlaveProcess { slave, detail }) => {
            Err(SimError::SlaveProcess { slave, detail })
        }
        Err(e) => Err(SimError::SlaveProcess {
            slave: 0,
            detail: format!("corrupt stream from child ({status}): {e}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bighouse_workloads::{StandardWorkload, Workload};

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
            .with_utilization(0.5)
            .with_target_accuracy(0.1)
            .with_warmup(50)
            .with_calibration(500)
            .with_max_events(20_000_000)
    }

    #[test]
    fn frame_roundtrip() {
        let frame = UpFrame::Heartbeat {
            slave: 3,
            incarnation: 7,
            events: 123_456,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = &buf[..];
        let back: UpFrame = read_frame(&mut cursor).unwrap().expect("one frame");
        match back {
            UpFrame::Heartbeat {
                slave,
                incarnation,
                events,
            } => {
                assert_eq!((slave, incarnation, events), (3, 7, 123_456));
            }
            other => panic!("wrong frame: {other:?}"),
        }
        // Clean EOF between frames is Ok(None), not an error.
        assert!(read_frame::<_, UpFrame>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncation_and_bitflips_are_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &DownFrame::Shutdown).unwrap();
        // Every strict prefix must fail typed (except the empty one = EOF).
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            let err = read_frame::<_, DownFrame>(&mut cursor).unwrap_err();
            assert!(matches!(err, SimError::Frame { .. }), "cut at {cut}: {err}");
        }
        // Any single flipped bit must fail typed, never be accepted.
        for byte in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[byte] ^= 0x10;
            let mut cursor = &corrupt[..];
            match read_frame::<_, DownFrame>(&mut cursor) {
                Err(SimError::Frame { .. }) => {}
                Ok(decoded) => panic!("flip at byte {byte} silently accepted: {decoded:?}"),
                Err(other) => panic!("flip at byte {byte} gave non-frame error: {other}"),
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        let mut cursor = &buf[..];
        let err = read_frame::<_, UpFrame>(&mut cursor).unwrap_err();
        assert!(matches!(err, SimError::Frame { .. }));
        assert!(err.to_string().contains("length"));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &DownFrame::Shutdown).unwrap();
        buf[4] = PROTOCOL_VERSION + 1; // version byte, first of the body
        // Recompute the checksum so only the version check can reject it.
        let len = buf.len();
        let sum = fnv1a(&buf[4..len - 8]);
        buf[len - 8..].copy_from_slice(&sum.to_le_bytes());
        let mut cursor = &buf[..];
        let err = read_frame::<_, DownFrame>(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn full_jitter_is_deterministic_bounded_and_decorrelated() {
        let base = Duration::from_millis(25);
        for attempt in 1..=10u32 {
            let cap = base * 2u32.pow((attempt - 1).min(6));
            for salt in 0..8u64 {
                let d = full_jitter_backoff(base, attempt, salt);
                assert!(d >= Duration::from_millis(1));
                assert!(d <= cap, "attempt {attempt} salt {salt}: {d:?} > {cap:?}");
                assert_eq!(d, full_jitter_backoff(base, attempt, salt));
            }
        }
        // Different salts must not synchronize (the respawn-storm fix).
        let delays: std::collections::HashSet<Duration> =
            (0..16u64).map(|s| full_jitter_backoff(base, 3, s)).collect();
        assert!(delays.len() > 8, "jitter collapsed: {delays:?}");
    }

    #[test]
    fn thread_lockstep_is_bit_reproducible() {
        let run = || {
            ParallelRunner::new(quick_config(), 2)
                .with_backend(ExecBackend::ThreadLockstep)
                .with_slave_epoch(50_000)
                .run(424_242)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.converged);
        let ea = serde_json::to_string(&a.estimates).unwrap();
        let eb = serde_json::to_string(&b.estimates).unwrap();
        assert_eq!(ea, eb, "lockstep runs must be bit-identical");
    }

    #[test]
    fn lockstep_panic_chaos_recovers_bit_identically() {
        // The determinism claim under fire: a slave crashing right after
        // its first epoch checkpoint is resurrected, replays, and the
        // merged estimates equal the undisturbed run's exactly.
        let clean = ParallelRunner::new(quick_config(), 2)
            .with_backend(ExecBackend::ThreadLockstep)
            .with_slave_epoch(50_000)
            .run(777)
            .unwrap();
        let chaotic = ParallelRunner::new(quick_config(), 2)
            .with_backend(ExecBackend::ThreadLockstep)
            .with_slave_epoch(50_000)
            .with_proc_chaos(ProcChaos::PanicAfterFirstEpoch { slave: 1 })
            .run(777)
            .unwrap();
        assert!(chaotic.resurrections >= 1, "the chaos hook did not fire");
        assert!(chaotic.dead_slaves.is_empty());
        assert_eq!(
            serde_json::to_string(&clean.estimates).unwrap(),
            serde_json::to_string(&chaotic.estimates).unwrap(),
            "resurrection must reproduce the undisturbed trajectory"
        );
    }

    #[test]
    fn lockstep_event_cap_reports_unconverged() {
        let config = quick_config()
            .with_target_accuracy(0.01)
            .with_max_events(60_000);
        let outcome = ParallelRunner::new(config, 2)
            .with_backend(ExecBackend::ThreadLockstep)
            .with_slave_epoch(50_000)
            .run(55)
            .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.termination, TerminationReason::Deadline);
    }

    #[test]
    fn lockstep_interrupt_winds_down() {
        let flag = Arc::new(AtomicBool::new(true));
        let config = quick_config()
            .with_target_accuracy(0.0005)
            .with_max_events(u64::MAX / 2);
        let outcome = ParallelRunner::new(config, 2)
            .with_backend(ExecBackend::ThreadLockstep)
            .with_interrupt(Arc::clone(&flag))
            .run(43)
            .unwrap();
        assert_eq!(outcome.termination, TerminationReason::Interrupted);
        assert!(!outcome.converged);
        assert!(outcome.wall_seconds < 30.0);
    }

    #[test]
    fn lockstep_persistent_crasher_is_dropped() {
        let outcome = ParallelRunner::new(quick_config(), 3)
            .with_backend(ExecBackend::ThreadLockstep)
            .with_slave_epoch(50_000)
            .with_persistent_panic(1)
            .with_max_restarts(1)
            .run(88)
            .unwrap();
        assert_eq!(outcome.dead_slaves, vec![1]);
        assert_eq!(outcome.resurrections, 1);
        assert!(outcome.metric("response_time").is_some());
    }

    #[test]
    fn proc_chaos_env_parsing() {
        assert_eq!(
            ProcChaos::from_env_str("kill:2"),
            Some(ProcChaos::KillMidEpoch { slave: 2 })
        );
        assert_eq!(
            ProcChaos::from_env_str("abort:0"),
            Some(ProcChaos::AbortAfterFirstEpoch { slave: 0 })
        );
        assert_eq!(
            ProcChaos::from_env_str("panic:1"),
            Some(ProcChaos::PanicAfterFirstEpoch { slave: 1 })
        );
        assert_eq!(ProcChaos::from_env_str("frobnicate:1"), None);
        assert_eq!(ProcChaos::from_env_str("kill"), None);
        assert_eq!(ProcChaos::from_env_str("kill:x"), None);
    }
}
