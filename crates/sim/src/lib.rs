//! BigHouse simulation orchestration.
//!
//! This crate assembles the substrates — the discrete-event engine, the
//! statistics package, workloads, and the data-center object model — into
//! runnable experiments:
//!
//! - [`ExperimentConfig`] describes a simulated cluster, its workload, and
//!   the output metrics (with accuracy/confidence targets) to observe,
//! - [`run_serial`] executes the Figure 2 phase sequence on one thread and
//!   terminates at convergence,
//! - [`ParallelRunner`] executes the Figure 3 master/slave protocol across
//!   threads: the master calibrates and broadcasts the histogram bin
//!   scheme, each slave simulates with a unique seed, and the master
//!   monitors aggregate sample size, merges slave histograms, and reports.
//!   Slave panics are contained, and an optional watchdog bounds
//!   non-converging runs.
//! - Fault injection ([`ExperimentConfig::with_faults`]) subjects servers
//!   to failure/repair processes; [`ExperimentConfig::with_retry`] adds
//!   client-side request timeouts with capped-exponential-backoff retries.
//!   Exact accounting lands in [`FaultSummary`].
//! - Overload resilience ([`ExperimentConfig::with_resilience`]) composes
//!   admission control, priority-class load shedding, hedged requests, and
//!   deterministic overload ramps per cluster — enough to reproduce
//!   metastable retry storms and show admission control restoring goodput.
//!   Exact request disposition lands in [`ResilienceSummary`].
//! - [`run_resumable`] executes the same statistics epoch-structured, so
//!   the run can checkpoint itself ([`CheckpointConfig`]), survive a kill
//!   (`--resume` restores bit-identical estimates), and wind down
//!   gracefully on SIGINT/SIGTERM. [`ParallelRunner`] doubles as a
//!   supervisor: crashed slaves are resurrected from in-memory epoch
//!   checkpoints before the runner falls back to dropping them.
//! - Paranoid mode ([`ExperimentConfig::with_audit`]) threads a runtime
//!   invariant auditor through the hot loop: conservation and energy
//!   accounting are swept on an event cadence, every observation is vetted
//!   before it can poison an estimator, and livelocks/event storms are
//!   broken with an honest partial report ([`AuditReport`]) instead of a
//!   hang. With auditing off the estimates are bit-identical.
//! - The analytic fast path ([`ExperimentConfig::with_fastpath`])
//!   recognizes plain G/G/k FCFS configurations — no faults, no capping
//!   epochs, no resilience — and batch-computes departures without the
//!   binary-heap calendar, consuming the identical RNG stream so every
//!   estimate stays bit-identical to the calendar engine. [`FastPathMode`]
//!   selects `auto` (default), `off`, or `force`.
//! - [`run_sweep`] orchestrates whole experiment *grids* across a
//!   work-stealing pool: per-config panic isolation and deadlines,
//!   bounded retry with quarantine of poison configs, deterministic
//!   per-config seeds, and a crash-resumable completed-config ledger
//!   aggregated into one [`SweepReport`].
//!
//! # Examples
//!
//! Estimate the 95th-percentile response time of a Web server at 50% load:
//!
//! ```
//! use bighouse_sim::{ExperimentConfig, MetricKind, run_serial};
//! use bighouse_workloads::{StandardWorkload, Workload};
//!
//! let config = ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
//!     .with_utilization(0.5)
//!     .with_target_accuracy(0.10); // coarse target: fast doc-test
//! let report = run_serial(&config, 42).unwrap();
//! let response = report.metric(MetricKind::ResponseTime.name()).unwrap();
//! assert!(response.mean > 0.0);
//! assert!(report.converged);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod checkpoint;
mod cluster;
mod config;
mod error;
mod fastpath;
mod multitier;
mod parallel;
pub mod procslave;
mod report;
mod resilience;
mod runner;
mod sweep;
mod telemetry;
mod trace;

#[doc(hidden)]
pub use audit::SeededBug;
pub use audit::{AuditConfig, AuditReport, AuditViolation, AuditWarning};
pub use checkpoint::{
    config_fingerprint, CheckpointConfig, CheckpointStore, FaultTotals, ResilienceTotals, RunState,
    RunTotals,
};
pub use cluster::ClusterSim;
pub use config::{ArrivalMode, ExperimentConfig, MetricKind};
pub use error::SimError;
pub use fastpath::FastPathMode;
pub use multitier::{run_multi_tier, MultiTierConfig, TierConfig};
pub use parallel::{ParallelOutcome, ParallelRunner};
#[doc(hidden)]
pub use procslave::ProcChaos;
pub use procslave::{slave_main, ExecBackend, ProcLimits, ProcSlaveConfig};
pub use report::{ClusterSummary, FaultSummary, RuntimeStats, SimulationReport, TerminationReason};
pub use resilience::{
    AdmissionPolicy, ClassDisposition, HedgePolicy, OverloadRamp, ResilienceConfig,
    ResilienceSummary, SheddingPolicy,
};
pub use runner::{run_resumable, run_serial, run_until_calibrated, RunOptions};
#[doc(hidden)]
pub use sweep::SweepFaultInjection;
pub use sweep::{
    config_seed, run_sweep, ConfigOutcome, QuarantinedConfig, SweepEntry, SweepError, SweepEvent,
    SweepEventHook, SweepOptions, SweepReport, SweepRuntime,
};
pub use trace::{replay_trace, Trace, TraceEntry, TraceError, TraceReplayReport};
