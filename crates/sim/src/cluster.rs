//! The cluster simulation: the queuing network exercised by the engine.

use std::collections::HashMap;

use bighouse_des::{Calendar, Control, EventHandle, SimRng, Simulation, Time};
use bighouse_dists::Distribution;
use bighouse_models::{Job, JobId, LoadBalancer, PowerCapper, Server};
use bighouse_stats::{HistogramSpec, MetricId, Phase, StatsCollection};

use crate::config::{ArrivalMode, ExperimentConfig, MetricKind};
use crate::report::ClusterSummary;

/// Events dispatched by a [`ClusterSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A new task arrives at a specific server (per-server streams).
    Arrival {
        /// Target server index.
        server: usize,
    },
    /// A new task arrives at the cluster front-end (load-balanced mode).
    BalancedArrival,
    /// A server's own next event (completion, wake, threshold) is due.
    Attention {
        /// Server index.
        server: usize,
    },
    /// A power-capping budgeting epoch boundary (§4.1: every second).
    CappingEpoch,
    /// A plain observation epoch (power metric without capping).
    ObservationEpoch,
}

/// The simulated cluster: servers, arrival processes, the optional global
/// power capper, and the statistics engine observing it all.
///
/// Implements [`Simulation`] for the discrete-event [`bighouse_des::Engine`];
/// use [`crate::run_serial`] unless you need custom control.
#[derive(Debug)]
pub struct ClusterSim {
    config: ExperimentConfig,
    servers: Vec<Server>,
    attention: Vec<Option<EventHandle>>,
    balancer: Option<LoadBalancer>,
    capper: Option<PowerCapper>,
    rng: SimRng,
    stats: StatsCollection,
    response_id: MetricId,
    waiting_id: Option<MetricId>,
    capping_id: Option<MetricId>,
    power_id: Option<MetricId>,
    energy_marks: Vec<f64>,
    job_counter: u64,
    stop_on_convergence: bool,
}

impl ClusterSim {
    /// Builds the simulation from a validated config and an RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`ExperimentConfig`]).
    #[must_use]
    pub fn new(config: ExperimentConfig, seed: u64) -> Self {
        Self::build(config, seed, &HashMap::new())
    }

    /// Builds a *slave* simulation: histogram bin schemes are forced to the
    /// master's broadcast values (Figure 3) and the simulation does not
    /// stop on its own convergence — the master decides when the aggregate
    /// sample suffices.
    #[must_use]
    pub fn new_slave(
        config: ExperimentConfig,
        seed: u64,
        histogram_specs: &HashMap<String, HistogramSpec>,
    ) -> Self {
        let mut sim = Self::build(config, seed, histogram_specs);
        sim.stop_on_convergence = false;
        sim
    }

    fn build(
        config: ExperimentConfig,
        seed: u64,
        forced_histograms: &HashMap<String, HistogramSpec>,
    ) -> Self {
        config.validate();
        let mut servers = Vec::with_capacity(config.servers);
        for _ in 0..config.servers {
            let mut server = Server::new(config.cores_per_server)
                .with_policy(config.idle_policy)
                .with_dvfs(config.dvfs);
            if let Some(model) = config.power_model {
                server = server.with_power_model(model);
            }
            servers.push(server);
        }
        let balancer = match config.arrival_mode {
            ArrivalMode::PerServer => None,
            ArrivalMode::LoadBalanced(policy) => {
                Some(LoadBalancer::new(policy, config.servers))
            }
        };
        let mut stats = StatsCollection::new();
        let mut response_id = None;
        let mut waiting_id = None;
        let mut capping_id = None;
        let mut power_id = None;
        for (kind, spec) in config.metric_specs() {
            let id = match forced_histograms.get(spec.name()) {
                Some(&hist) => stats.add_metric_with_histogram(spec, hist),
                None => stats.add_metric(spec),
            };
            match kind {
                MetricKind::ResponseTime => response_id = Some(id),
                MetricKind::WaitingTime => waiting_id = Some(id),
                MetricKind::CappingLevel => capping_id = Some(id),
                MetricKind::ServerPower => power_id = Some(id),
            }
        }
        let n = config.servers;
        ClusterSim {
            capper: config.capper.clone(),
            servers,
            attention: vec![None; n],
            balancer,
            rng: SimRng::from_seed(seed),
            stats,
            response_id: response_id.expect("response time is always tracked"),
            waiting_id,
            capping_id,
            power_id,
            energy_marks: vec![0.0; n],
            job_counter: 0,
            stop_on_convergence: true,
            config,
        }
    }

    /// Schedules the initial events: first arrivals and, if configured, the
    /// first budgeting/observation epoch. Call exactly once before running.
    pub fn prime(&mut self, cal: &mut Calendar<ClusterEvent>) {
        match self.config.arrival_mode {
            ArrivalMode::PerServer => {
                for s in 0..self.servers.len() {
                    let dt = self.config.workload.interarrival().sample(&mut self.rng);
                    cal.schedule_in(dt, ClusterEvent::Arrival { server: s });
                }
            }
            ArrivalMode::LoadBalanced(_) => {
                let dt = self.config.workload.interarrival().sample(&mut self.rng);
                cal.schedule_in(dt, ClusterEvent::BalancedArrival);
            }
        }
        if let Some(capper) = &self.capper {
            cal.schedule_in(capper.epoch_seconds(), ClusterEvent::CappingEpoch);
        } else if self.power_id.is_some() {
            cal.schedule_in(
                PowerCapper::DEFAULT_EPOCH_SECONDS,
                ClusterEvent::ObservationEpoch,
            );
        }
    }

    /// The statistics engine (read access).
    #[must_use]
    pub fn stats(&self) -> &StatsCollection {
        &self.stats
    }

    /// Whether every metric has finished calibration (reached measurement
    /// or convergence) — the master's hand-off point in Figure 3.
    #[must_use]
    pub fn all_calibrated(&self) -> bool {
        self.stats
            .iter()
            .all(|m| matches!(m.phase(), Phase::Measurement | Phase::Converged))
    }

    /// The histogram bin schemes chosen during calibration, keyed by metric
    /// name — the payload the master broadcasts to slaves.
    #[must_use]
    pub fn histogram_specs(&self) -> HashMap<String, HistogramSpec> {
        self.stats
            .iter()
            .filter_map(|m| {
                m.histogram()
                    .map(|h| (m.spec().name().to_owned(), *h.spec()))
            })
            .collect()
    }

    /// Jobs injected so far.
    #[must_use]
    pub fn jobs_injected(&self) -> u64 {
        self.job_counter
    }

    /// Builds the cluster-level summary at time `now`.
    #[must_use]
    pub fn summary(&self, now: Time) -> ClusterSummary {
        let n = self.servers.len() as f64;
        let total_energy: f64 = self.servers.iter().map(Server::energy_joules).sum();
        let sim_seconds = now.as_seconds();
        ClusterSummary {
            servers: self.servers.len(),
            jobs_completed: self.servers.iter().map(Server::completed_jobs).sum(),
            mean_full_idle_fraction: self
                .servers
                .iter()
                .map(|s| s.full_idle_fraction(now))
                .sum::<f64>()
                / n,
            mean_nap_fraction: self
                .servers
                .iter()
                .map(|s| s.nap_fraction(now))
                .sum::<f64>()
                / n,
            mean_utilization: self
                .servers
                .iter()
                .map(|s| s.average_utilization(now))
                .sum::<f64>()
                / n,
            total_energy_joules: total_energy,
            average_power_watts: if sim_seconds > 0.0 {
                total_energy / sim_seconds
            } else {
                0.0
            },
        }
    }

    fn record_finished(&mut self, finished: &[bighouse_models::FinishedJob]) {
        for f in finished {
            self.stats.record(self.response_id, f.response_time());
            if let Some(id) = self.waiting_id {
                let wait = f.waiting_time();
                // Waiting observations exist only for tasks that queued —
                // the rarity driving Figure 9's "+Waiting" runtimes.
                if wait > 0.0 {
                    self.stats.record(id, wait);
                }
            }
        }
    }

    fn inject(&mut self, server: usize, now: Time) {
        let size = self.config.workload.service().sample(&mut self.rng);
        let job = Job::new(JobId::new(self.job_counter), now, size.max(1e-12));
        self.job_counter += 1;
        let finished = self.servers[server].arrive(job, now);
        self.record_finished(&finished);
    }

    fn reschedule_attention(&mut self, server: usize, now: Time, cal: &mut Calendar<ClusterEvent>) {
        if let Some(handle) = self.attention[server].take() {
            cal.cancel(handle);
        }
        if let Some(t) = self.servers[server].next_event() {
            // Guard against sub-nanosecond floating-point drift below `now`.
            let at = t.max(now);
            self.attention[server] = Some(cal.schedule(at, ClusterEvent::Attention { server }));
        }
    }

    fn epoch_tick(&mut self, now: Time, rebudget: bool, cal: &mut Calendar<ClusterEvent>) {
        let mut utilizations = Vec::with_capacity(self.servers.len());
        for s in 0..self.servers.len() {
            let finished = self.servers[s].sync(now);
            self.record_finished(&finished);
            utilizations.push(self.servers[s].take_epoch_utilization(now));
        }
        if rebudget {
            let capper = self.capper.as_ref().expect("capping epoch requires capper");
            let outcome = capper.rebudget(&utilizations);
            let total_capping = outcome.total_capping_level();
            for s in 0..self.servers.len() {
                let finished = self.servers[s].set_frequency(outcome.frequencies[s], now);
                self.record_finished(&finished);
            }
            if let Some(id) = self.capping_id {
                // One cluster-level observation per budgeting epoch: the
                // metric's pace is set by simulated time, not request rate.
                self.stats.record(id, total_capping);
            }
        }
        if let Some(id) = self.power_id {
            let epoch = self
                .capper
                .as_ref()
                .map_or(PowerCapper::DEFAULT_EPOCH_SECONDS, PowerCapper::epoch_seconds);
            for s in 0..self.servers.len() {
                let energy = self.servers[s].energy_joules();
                let watts = (energy - self.energy_marks[s]) / epoch;
                self.energy_marks[s] = energy;
                self.stats.record(id, watts);
            }
        }
        for s in 0..self.servers.len() {
            self.reschedule_attention(s, now, cal);
        }
    }
}

impl Simulation for ClusterSim {
    type Event = ClusterEvent;

    fn handle(
        &mut self,
        now: Time,
        event: ClusterEvent,
        cal: &mut Calendar<ClusterEvent>,
    ) -> Control {
        match event {
            ClusterEvent::Arrival { server } => {
                self.inject(server, now);
                let dt = self.config.workload.interarrival().sample(&mut self.rng);
                cal.schedule_in(dt, ClusterEvent::Arrival { server });
                self.reschedule_attention(server, now, cal);
            }
            ClusterEvent::BalancedArrival => {
                let queue_lengths: Vec<usize> =
                    self.servers.iter().map(Server::outstanding).collect();
                let balancer = self.balancer.as_mut().expect("balanced mode has balancer");
                let server = balancer.pick(&queue_lengths, &mut self.rng);
                self.inject(server, now);
                let dt = self.config.workload.interarrival().sample(&mut self.rng);
                cal.schedule_in(dt, ClusterEvent::BalancedArrival);
                self.reschedule_attention(server, now, cal);
            }
            ClusterEvent::Attention { server } => {
                self.attention[server] = None;
                let finished = self.servers[server].sync(now);
                self.record_finished(&finished);
                self.reschedule_attention(server, now, cal);
            }
            ClusterEvent::CappingEpoch => {
                self.epoch_tick(now, true, cal);
                let epoch = self.capper.as_ref().expect("capper present").epoch_seconds();
                cal.schedule_in(epoch, ClusterEvent::CappingEpoch);
            }
            ClusterEvent::ObservationEpoch => {
                self.epoch_tick(now, false, cal);
                cal.schedule_in(
                    PowerCapper::DEFAULT_EPOCH_SECONDS,
                    ClusterEvent::ObservationEpoch,
                );
            }
        }
        if self.stop_on_convergence && self.stats.all_converged() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bighouse_des::Engine;
    use bighouse_workloads::{StandardWorkload, Workload};

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
            .with_utilization(0.5)
            .with_target_accuracy(0.2)
            .with_warmup(50)
            .with_calibration(500)
    }

    fn run(config: ExperimentConfig, seed: u64) -> (ClusterSim, Time, u64) {
        let mut sim = ClusterSim::new(config, seed);
        let mut cal = Calendar::new();
        sim.prime(&mut cal);
        let mut engine = Engine::from_parts(sim, cal);
        let stats = engine.run_with_limit(20_000_000);
        let now = engine.now();
        (engine.into_simulation(), now, stats.events_fired)
    }

    #[test]
    fn single_server_run_converges() {
        let (sim, now, events) = run(quick_config(), 1);
        assert!(sim.stats().all_converged(), "did not converge in event budget");
        assert!(events > 1000);
        let summary = sim.summary(now);
        assert!(summary.jobs_completed > 1000);
        // Utilization should be near the configured 50%.
        assert!(
            (summary.mean_utilization - 0.5).abs() < 0.1,
            "utilization {}",
            summary.mean_utilization
        );
    }

    #[test]
    fn response_estimate_exceeds_service_mean() {
        // Tight accuracy: with the Web workload's Cv = 3.4 service times, a
        // coarse sample's mean fluctuates far too much for this check.
        let (sim, _, _) = run(quick_config().with_target_accuracy(0.05), 2);
        let est = sim
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        assert!(
            est.mean >= service_mean * 0.9,
            "response {} cannot be below service mean {service_mean}",
            est.mean
        );
    }

    #[test]
    fn multi_server_per_stream_mode() {
        let (sim, now, _) = run(quick_config().with_servers(4), 3);
        assert!(sim.stats().all_converged());
        let summary = sim.summary(now);
        assert_eq!(summary.servers, 4);
    }

    #[test]
    fn load_balanced_mode_distributes_work() {
        use bighouse_models::BalancerPolicy;
        let config = quick_config()
            .with_servers(4)
            .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue));
        // Balanced mode shares one arrival stream; rescale it so the whole
        // cluster (not each server) sees 50% load: the per-server stream is
        // already at 0.5 for 4 cores, so divide inter-arrivals by 4.
        let config = ExperimentConfig::new(
            config
                .workload()
                .with_interarrival_scale(0.25)
                .unwrap(),
        )
        .with_servers(4)
        .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
        .with_target_accuracy(0.2)
        .with_warmup(50)
        .with_calibration(500);
        let (sim, now, _) = run(config, 4);
        assert!(sim.stats().all_converged());
        let summary = sim.summary(now);
        for s in &sim.servers {
            assert!(s.completed_jobs() > 100, "server starved: {}", s.completed_jobs());
        }
        assert!((summary.mean_utilization - 0.5).abs() < 0.15);
    }

    #[test]
    fn capping_epoch_throttles_overloaded_cluster() {
        use bighouse_models::{DvfsModel, LinearPowerModel};
        // Budget below what two busy servers want: capping must engage.
        let capper = PowerCapper::new(
            LinearPowerModel::typical_server(),
            DvfsModel::default(),
            250.0,
        );
        let config = quick_config()
            .with_servers(2)
            .with_utilization(0.8)
            .with_capper(capper)
            .with_metric(MetricKind::CappingLevel)
            .with_warmup(100)
            .with_calibration(300)
            .with_max_events(5_000_000);
        let (sim, _, _) = run(config, 5);
        let capping = sim.stats().metric_by_name("capping_level").unwrap();
        let est = capping.estimate().expect("capping metric observed");
        assert!(est.mean > 0.0, "tight budget must produce capping");
    }

    #[test]
    fn power_metric_without_capper_uses_observation_epochs() {
        use bighouse_models::LinearPowerModel;
        let config = quick_config()
            .with_power_model(LinearPowerModel::typical_server())
            .with_metric(MetricKind::ServerPower)
            .with_warmup(20)
            .with_calibration(200)
            .with_max_events(10_000_000);
        let (sim, now, _) = run(config, 6);
        let power = sim.stats().metric_by_name("server_power").unwrap();
        assert!(power.total_observed() > 0, "power epochs must fire");
        let summary = sim.summary(now);
        assert!(summary.average_power_watts > 100.0);
        assert!(summary.average_power_watts < 200.0);
    }

    #[test]
    fn timeout_nap_policy_accumulates_nap_time() {
        use bighouse_models::IdlePolicy;
        // Light load on a big server: long idle gaps exceed the timeout.
        let config = quick_config()
            .with_cores(8)
            .with_utilization(0.1)
            .with_idle_policy(IdlePolicy::TimeoutNap {
                idle_timeout: 0.02,
                wake_latency: 0.001,
            });
        let (sim, now, _) = run(config, 12);
        let summary = sim.summary(now);
        assert!(
            summary.mean_nap_fraction > 0.1,
            "timeout policy should nap at 10% load, got {}",
            summary.mean_nap_fraction
        );
        // Napping never exceeds full idleness.
        assert!(summary.mean_nap_fraction <= summary.mean_full_idle_fraction + 1e-9);
    }

    #[test]
    fn quantile_value_ci_is_reported() {
        let (sim, _, _) = run(quick_config(), 13);
        let est = sim
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        let p95 = est.quantiles.iter().find(|q| q.q == 0.95).unwrap();
        let hv = p95.half_width_value.expect("density is estimable");
        assert!(hv > 0.0 && hv < p95.value, "value CI {hv} vs p95 {}", p95.value);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, now_a, ev_a) = run(quick_config(), 7);
        let (b, now_b, ev_b) = run(quick_config(), 7);
        assert_eq!(now_a, now_b);
        assert_eq!(ev_a, ev_b);
        let ea = a.stats().metric_by_name("response_time").unwrap().estimate().unwrap();
        let eb = b.stats().metric_by_name("response_time").unwrap().estimate().unwrap();
        assert_eq!(ea.mean, eb.mean);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, ..) = run(quick_config(), 8);
        let (b, ..) = run(quick_config(), 9);
        let ea = a.stats().metric_by_name("response_time").unwrap().estimate().unwrap();
        let eb = b.stats().metric_by_name("response_time").unwrap().estimate().unwrap();
        assert_ne!(ea.mean, eb.mean);
    }

    #[test]
    fn slave_does_not_stop_on_convergence() {
        let mut master = ClusterSim::new(quick_config(), 10);
        let mut cal = Calendar::new();
        master.prime(&mut cal);
        let mut engine = Engine::from_parts(master, cal);
        engine.run_with_limit(20_000_000);
        let specs = engine.simulation().histogram_specs();
        assert!(!specs.is_empty());

        let mut slave = ClusterSim::new_slave(quick_config(), 11, &specs);
        let mut cal = Calendar::new();
        slave.prime(&mut cal);
        let mut engine = Engine::from_parts(slave, cal);
        let stats = engine.run_with_limit(2_000_000);
        assert!(
            !stats.stopped_by_simulation,
            "slaves must keep simulating until told to stop"
        );
        // The slave adopted the master's bin scheme.
        let slave_specs = engine.simulation().histogram_specs();
        assert_eq!(slave_specs["response_time"], specs["response_time"]);
    }
}
