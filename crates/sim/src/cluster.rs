//! The cluster simulation: the queuing network exercised by the engine.

use std::collections::{HashMap, VecDeque};

use bighouse_des::{
    Calendar, CalendarStats, Control, EventHandle, FastMap, ProgressViolation, RunStats, SimRng,
    Simulation, Time,
};
use bighouse_dists::{Distribution, QuantileGuide};
use bighouse_models::{FinishedJob, Job, JobId, LoadBalancer, PowerCapper, Server};
use bighouse_stats::{HistogramSpec, MetricId, Phase, StatsCollection};

use crate::audit::{AuditLedger, AuditReport, Auditor, SeededBug};
use crate::config::{ArrivalMode, ExperimentConfig, MetricKind};
use crate::error::SimError;
use crate::fastpath::FastPathMode;
use crate::report::{ClusterSummary, FaultSummary};
use crate::resilience::{AdmissionPolicy, ResilienceState, ResilienceSummary};
use crate::telemetry::ClusterTelemetry;
use bighouse_telemetry::Recorder as _;

/// Events dispatched by a [`ClusterSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A new task arrives at a specific server (per-server streams).
    Arrival {
        /// Target server index.
        server: usize,
    },
    /// A new task arrives at the cluster front-end (load-balanced mode).
    BalancedArrival,
    /// A server's own next event (completion, wake, threshold) is due.
    Attention {
        /// Server index.
        server: usize,
    },
    /// A power-capping budgeting epoch boundary (§4.1: every second).
    CappingEpoch,
    /// A plain observation epoch (power/availability metric without
    /// capping).
    ObservationEpoch,
    /// A server goes down (fault injection: end of an uptime period).
    ServerFailure {
        /// Server index.
        server: usize,
    },
    /// A failed server comes back into service (end of a repair period).
    ServerRepair {
        /// Server index.
        server: usize,
    },
    /// A request's client-side timeout expires ([`bighouse_faults::RetryPolicy`]).
    RequestTimeout {
        /// Raw [`JobId`] of the request.
        job: u64,
    },
    /// A timed-out request's backoff delay expires: dispatch the retry.
    Redispatch {
        /// Raw [`JobId`] of the request.
        job: u64,
    },
    /// A request's hedge deadline expires: duplicate it to a second server
    /// ([`crate::HedgePolicy`]).
    HedgeFire {
        /// Raw [`JobId`] of the *primary* request.
        job: u64,
    },
}

/// A live hedge duplicate: its own job id and where it runs.
#[derive(Debug, Clone, Copy)]
struct HedgeJob {
    job: u64,
    server: usize,
}

/// Per-request bookkeeping while fault injection or retries are active.
///
/// The [`Job`] keeps its original arrival time across preemptions and
/// retries, so the recorded response time spans the whole request saga.
#[derive(Debug)]
struct RequestState {
    job: Job,
    /// Dispatch attempt currently in flight (1 = first try).
    attempt: u32,
    /// Fixed target in per-server arrival mode; `None` under a balancer.
    home: Option<usize>,
    /// Where the job currently sits, if placed.
    server: Option<usize>,
    /// Live timeout event, if a retry policy is armed.
    timeout: Option<EventHandle>,
    /// A [`ClusterEvent::Redispatch`] is pending (backoff in progress);
    /// repair-time drains must not double-place the request.
    pending_redispatch: bool,
    /// Priority class (0 = most important; always 0 with one class).
    class: u8,
    /// Live hedge-deadline event, if a hedge policy is armed.
    hedge_fire: Option<EventHandle>,
    /// Live hedge duplicate, if one has been launched.
    hedge: Option<HedgeJob>,
}

/// The simulated cluster: servers, arrival processes, the optional global
/// power capper, optional fault injection, and the statistics engine
/// observing it all.
///
/// Implements [`Simulation`] for the discrete-event [`bighouse_des::Engine`];
/// use [`crate::run_serial`] unless you need custom control.
#[derive(Debug)]
pub struct ClusterSim {
    config: ExperimentConfig,
    servers: Vec<Server>,
    attention: Vec<Option<EventHandle>>,
    balancer: Option<LoadBalancer>,
    capper: Option<PowerCapper>,
    rng: SimRng,
    stats: StatsCollection,
    response_id: MetricId,
    waiting_id: Option<MetricId>,
    capping_id: Option<MetricId>,
    power_id: Option<MetricId>,
    availability_id: Option<MetricId>,
    shed_id: Option<MetricId>,
    hedge_win_id: Option<MetricId>,
    goodput_id: Option<MetricId>,
    slo_id: Option<MetricId>,
    energy_marks: Vec<f64>,
    failed_marks: Vec<f64>,
    job_counter: u64,
    stop_on_convergence: bool,
    /// True when faults or retries are configured; gates the
    /// [`FaultSummary`].
    fault_mode: bool,
    /// True when faults, retries, *or* resilience are configured; the
    /// entire request tracking machinery below is bypassed (zero cost)
    /// when false.
    track_mode: bool,
    /// Overload-resilience runtime state (`None` when resilience is off —
    /// every resilience branch then costs one null check).
    resilience: Option<Box<ResilienceState>>,
    /// Maps a live hedge duplicate's job id to its primary's key.
    hedge_of: FastMap<u64, u64>,
    /// Job ids abandoned by a non-cancelling timeout
    /// ([`bighouse_faults::RetryPolicy::with_cancel_on_timeout`]): still running on a
    /// server but invisible to the client. Their completions are real
    /// work for the server books yet must not be recorded as responses.
    zombies: FastMap<u64, ()>,
    /// Per-request state, touched on every admit/complete/timeout in
    /// tracked mode — a deterministic fast-hash map, never iterated.
    requests: FastMap<u64, RequestState>,
    /// Requests with no live server to run on, awaiting a repair.
    stranded: VecDeque<u64>,
    /// Scratch for [`ClusterSim::epoch_tick`]'s per-server utilizations,
    /// reused across epochs instead of allocating per tick.
    epoch_utilizations: Vec<f64>,
    /// Scratch for [`ClusterSim::handle_repair`]'s stranded-request drain.
    stranded_scratch: Vec<u64>,
    n_failures: u64,
    n_admitted: u64,
    n_goodput: u64,
    n_timed_out: u64,
    n_retries: u64,
    n_preempted: u64,
    /// The runtime invariant auditor (`None` when paranoid mode is off —
    /// the entire audit machinery then costs one null check per event).
    audit: Option<Box<Auditor>>,
    /// Telemetry context (`None` when telemetry is off — same one-null-check
    /// cost structure as the auditor).
    telemetry: Option<Box<ClusterTelemetry>>,
    /// Deliberately seeded accounting bug (mutation-test hook).
    seeded_bug: Option<SeededBug>,
    /// Whether the seeded bug is still waiting to fire.
    bug_pending: bool,
}

impl ClusterSim {
    /// Builds the simulation from a validated config and an RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// internally inconsistent (see [`ExperimentConfig`]).
    pub fn new(config: ExperimentConfig, seed: u64) -> Result<Self, SimError> {
        Self::build(config, seed, &HashMap::new())
    }

    /// Builds a *slave* simulation: histogram bin schemes are forced to the
    /// master's broadcast values (Figure 3) and the simulation does not
    /// stop on its own convergence — the master decides when the aggregate
    /// sample suffices.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// internally inconsistent.
    pub fn new_slave(
        config: ExperimentConfig,
        seed: u64,
        histogram_specs: &HashMap<String, HistogramSpec>,
    ) -> Result<Self, SimError> {
        let mut sim = Self::build(config, seed, histogram_specs)?;
        sim.stop_on_convergence = false;
        Ok(sim)
    }

    fn build(
        config: ExperimentConfig,
        seed: u64,
        forced_histograms: &HashMap<String, HistogramSpec>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let mut servers = Vec::with_capacity(config.servers);
        for _ in 0..config.servers {
            let mut server = Server::new(config.cores_per_server)
                .with_policy(config.idle_policy)
                .with_dvfs(config.dvfs);
            if let Some(model) = config.power_model {
                server = server.with_power_model(model);
            }
            servers.push(server);
        }
        let balancer = match config.arrival_mode {
            ArrivalMode::PerServer => None,
            ArrivalMode::LoadBalanced(policy) => Some(LoadBalancer::new(policy, config.servers)),
        };
        let mut stats = StatsCollection::new();
        let mut response_id = None;
        let mut waiting_id = None;
        let mut capping_id = None;
        let mut power_id = None;
        let mut availability_id = None;
        let mut shed_id = None;
        let mut hedge_win_id = None;
        let mut goodput_id = None;
        let mut slo_id = None;
        for (kind, spec) in config.metric_specs() {
            let id = match forced_histograms.get(spec.name()) {
                Some(&hist) => stats.add_metric_with_histogram(spec, hist),
                None => stats.add_metric(spec),
            };
            match kind {
                MetricKind::ResponseTime => response_id = Some(id),
                MetricKind::WaitingTime => waiting_id = Some(id),
                MetricKind::CappingLevel => capping_id = Some(id),
                MetricKind::ServerPower => power_id = Some(id),
                MetricKind::Availability => availability_id = Some(id),
                MetricKind::ShedRate => shed_id = Some(id),
                MetricKind::HedgeWinRate => hedge_win_id = Some(id),
                MetricKind::GoodputFraction => goodput_id = Some(id),
                MetricKind::SloAttainment => slo_id = Some(id),
            }
        }
        let response_id = response_id
            .ok_or_else(|| SimError::InvalidConfig("response time metric missing".into()))?;
        let n = config.servers;
        let fault_mode = config.faults.is_some() || config.retry.is_some();
        let track_mode = fault_mode || config.resilience.is_some();
        let resilience = config
            .resilience
            .as_ref()
            .map(|r| Box::new(ResilienceState::new(r)));
        let audit = config.audit.as_ref().map(|cfg| {
            // The energy budget bound must cover every power state a
            // server can occupy, not just nominal peak.
            let peak = config
                .power_model
                .as_ref()
                .map(|m| m.peak_watts().max(m.failed_watts()).max(m.nap_watts()));
            Box::new(Auditor::new(cfg.clone(), n, peak))
        });
        let telemetry = config.telemetry.then(|| {
            let mut t = Box::new(ClusterTelemetry::new());
            t.prime_phases(&stats);
            t
        });
        Ok(ClusterSim {
            capper: config.capper.clone(),
            servers,
            attention: vec![None; n],
            balancer,
            rng: SimRng::from_seed(seed),
            stats,
            response_id,
            waiting_id,
            capping_id,
            power_id,
            availability_id,
            shed_id,
            hedge_win_id,
            goodput_id,
            slo_id,
            energy_marks: vec![0.0; n],
            failed_marks: vec![0.0; n],
            job_counter: 0,
            stop_on_convergence: true,
            fault_mode,
            track_mode,
            resilience,
            hedge_of: FastMap::default(),
            zombies: FastMap::default(),
            requests: FastMap::default(),
            stranded: VecDeque::new(),
            epoch_utilizations: Vec::new(),
            stranded_scratch: Vec::new(),
            n_failures: 0,
            n_admitted: 0,
            n_goodput: 0,
            n_timed_out: 0,
            n_retries: 0,
            n_preempted: 0,
            audit,
            telemetry,
            seeded_bug: None,
            bug_pending: false,
            config,
        })
    }

    /// Schedules the initial events: first arrivals, the first failure of
    /// each server (if faults are configured), and, if needed, the first
    /// budgeting/observation epoch. Call exactly once before running.
    pub fn prime(&mut self, cal: &mut Calendar<ClusterEvent>) {
        let now = cal.now();
        match self.config.arrival_mode {
            ArrivalMode::PerServer => {
                for s in 0..self.servers.len() {
                    let dt = self.next_interarrival(now);
                    cal.schedule_in(dt, ClusterEvent::Arrival { server: s });
                }
            }
            ArrivalMode::LoadBalanced(_) => {
                let dt = self.next_interarrival(now);
                cal.schedule_in(dt, ClusterEvent::BalancedArrival);
            }
        }
        if let Some(faults) = self.config.faults.as_ref() {
            for s in 0..self.servers.len() {
                let up = faults.sample_uptime(&mut self.rng);
                cal.schedule_in(up, ClusterEvent::ServerFailure { server: s });
            }
        }
        if let Some(capper) = &self.capper {
            cal.schedule_in(capper.epoch_seconds(), ClusterEvent::CappingEpoch);
        } else if self.power_id.is_some()
            || self.availability_id.is_some()
            || self.shed_id.is_some()
            || self.hedge_win_id.is_some()
            || self.goodput_id.is_some()
        {
            cal.schedule_in(
                PowerCapper::DEFAULT_EPOCH_SECONDS,
                ClusterEvent::ObservationEpoch,
            );
        }
    }

    /// Samples the next inter-arrival gap, compressed by the overload ramp
    /// while it is active. With no resilience config this is exactly one
    /// workload draw — the identical RNG sequence as before the ramp
    /// existed.
    fn next_interarrival(&mut self, now: Time) -> f64 {
        let dt = self.config.workload.interarrival().sample(&mut self.rng);
        match self.config.resilience.as_ref().and_then(|r| r.ramp) {
            Some(ramp) if ramp.active_at(now.as_seconds()) => dt / ramp.multiplier,
            _ => dt,
        }
    }

    /// The statistics engine (read access).
    #[must_use]
    pub fn stats(&self) -> &StatsCollection {
        &self.stats
    }

    /// Consumes the simulation, yielding its statistics collection — the
    /// epoch-boundary hand-off of resumable runs: the calendar and all
    /// in-flight requests are discarded, the accumulated statistics are
    /// carried into the next epoch (or into a checkpoint).
    #[must_use]
    pub fn into_stats(self) -> StatsCollection {
        self.stats
    }

    /// Replaces this simulation's (fresh) statistics with a collection
    /// carried over from an earlier epoch or restored from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] if the restored collection does not
    /// match the configured metric set (different count, names, or order) —
    /// the signature of resuming against the wrong experiment.
    pub fn restore_stats(&mut self, stats: StatsCollection) -> Result<(), SimError> {
        let matches = stats.len() == self.stats.len()
            && self
                .stats
                .iter()
                .zip(stats.iter())
                .all(|(mine, theirs)| mine.spec().name() == theirs.spec().name());
        if !matches {
            return Err(SimError::Checkpoint(
                "restored statistics do not match the configured metric set".into(),
            ));
        }
        self.stats = stats;
        // Restored metrics resume mid-phase; re-baseline so the next
        // genuine transition (not the restore itself) is what gets logged.
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.prime_phases(&self.stats);
        }
        Ok(())
    }

    /// Whether every metric has finished calibration (reached measurement
    /// or convergence) — the master's hand-off point in Figure 3.
    #[must_use]
    pub fn all_calibrated(&self) -> bool {
        self.stats
            .iter()
            .all(|m| matches!(m.phase(), Phase::Measurement | Phase::Converged))
    }

    /// The histogram bin schemes chosen during calibration, keyed by metric
    /// name — the payload the master broadcasts to slaves.
    #[must_use]
    pub fn histogram_specs(&self) -> HashMap<String, HistogramSpec> {
        self.stats
            .iter()
            .filter_map(|m| {
                m.histogram()
                    .map(|h| (m.spec().name().to_owned(), *h.spec()))
            })
            .collect()
    }

    /// Jobs injected so far.
    #[must_use]
    pub fn jobs_injected(&self) -> u64 {
        self.job_counter
    }

    /// Builds the cluster-level summary at time `now`.
    #[must_use]
    pub fn summary(&self, now: Time) -> ClusterSummary {
        let n = self.servers.len() as f64;
        let total_energy: f64 = self.servers.iter().map(Server::energy_joules).sum();
        let sim_seconds = now.as_seconds();
        let faults = if self.fault_mode {
            Some(FaultSummary {
                server_failures: self.n_failures,
                admitted: self.n_admitted,
                goodput: self.n_goodput,
                timed_out: self.n_timed_out,
                retries: self.n_retries,
                preempted_jobs: self.n_preempted,
                in_flight_at_end: self.requests.len() as u64,
                mean_failed_fraction: self
                    .servers
                    .iter()
                    .map(|s| s.failed_fraction(now))
                    .sum::<f64>()
                    / n,
            })
        } else {
            None
        };
        let resilience = self.resilience.as_deref().map(|state| ResilienceSummary {
            offered: state.offered,
            admitted: self.n_admitted,
            shed: state.shed,
            goodput: self.n_goodput,
            timed_out: self.n_timed_out,
            in_flight_at_end: self.requests.len() as u64,
            hedges_launched: state.hedges_launched,
            hedge_wins: state.hedge_wins,
            hedge_cancelled: state.hedge_cancelled,
            slo_met: state.slo_met,
            per_class: if state.per_class.len() > 1 {
                state.per_class.clone()
            } else {
                Vec::new()
            },
        });
        ClusterSummary {
            servers: self.servers.len(),
            jobs_completed: self.servers.iter().map(Server::completed_jobs).sum(),
            mean_full_idle_fraction: self
                .servers
                .iter()
                .map(|s| s.full_idle_fraction(now))
                .sum::<f64>()
                / n,
            mean_nap_fraction: self
                .servers
                .iter()
                .map(|s| s.nap_fraction(now))
                .sum::<f64>()
                / n,
            mean_utilization: self
                .servers
                .iter()
                .map(|s| s.average_utilization(now))
                .sum::<f64>()
                / n,
            total_energy_joules: total_energy,
            average_power_watts: if sim_seconds > 0.0 {
                total_energy / sim_seconds
            } else {
                0.0
            },
            faults,
            resilience,
        }
    }

    /// The current ledger snapshot for an audit sweep.
    fn ledger(&self) -> AuditLedger {
        let (offered, shed) = match self.resilience.as_deref() {
            Some(state) => (state.offered, state.shed),
            None => (0, 0),
        };
        AuditLedger {
            tracked: self.track_mode,
            resilience: self.resilience.is_some(),
            injected: self.job_counter,
            offered,
            admitted: self.n_admitted,
            shed,
            goodput: self.n_goodput,
            timed_out: self.n_timed_out,
            in_flight: self.requests.len() as u64,
        }
    }

    /// Records an observation, vetting it through the auditor first: a
    /// non-finite or negative value is dropped (never poisoning an
    /// estimator) and the recorded violation stops the run at the current
    /// event boundary. With auditing and telemetry off this is exactly
    /// `stats.record` plus two null checks.
    #[inline]
    fn observe(&mut self, id: MetricId, metric: &'static str, x: f64, now: Time) {
        if let Some(audit) = self.audit.as_deref_mut() {
            if !audit.check_observation(metric, x) {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.note_sample_rejected();
                }
                return;
            }
        }
        self.stats.record(id, x);
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_sample_recorded();
            t.sync_phase(&self.stats, id, now);
        }
    }

    /// Per-event audit hook: counts the event, runs an invariant sweep on
    /// the configured cadence, and reports whether a violation (from a
    /// sweep or an earlier observation tripwire) requires the run to stop.
    #[inline]
    fn audit_tick(&mut self, now: Time) -> bool {
        if self.audit.is_none() {
            return false;
        }
        let ledger = self.ledger();
        let Some(audit) = self.audit.as_deref_mut() else {
            return false;
        };
        if audit.event_due() {
            audit.sweep(now, &self.servers, &ledger);
        }
        audit.failed()
    }

    /// Whether the auditor has recorded an invariant violation.
    #[must_use]
    pub fn audit_failed(&self) -> bool {
        self.audit.as_deref().is_some_and(Auditor::failed)
    }

    /// Folds a progress-guard violation (livelock, event storm, time
    /// regression) into the audit report. No-op when auditing is off.
    pub fn record_progress_violation(&mut self, violation: ProgressViolation) {
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.record_progress_violation(violation);
        }
    }

    /// Runs the final audit sweep and the Little's-law probe. Call once
    /// when the run stops, before taking the report.
    pub fn finalize_audit(&mut self, now: Time) {
        if self.audit.is_none() {
            return;
        }
        let mean_response = self
            .stats
            .metric(self.response_id)
            .estimate()
            .map(|e| e.mean);
        let ledger = self.ledger();
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.finalize(now, &self.servers, &ledger, mean_response);
        }
    }

    /// Takes the audit report (`None` when paranoid mode is off). The
    /// auditor is consumed; call after [`ClusterSim::finalize_audit`].
    #[must_use]
    pub fn take_audit(&mut self) -> Option<AuditReport> {
        self.audit.take().map(|a| a.into_report())
    }

    /// Whether telemetry collection is enabled for this run.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Takes the telemetry context (`None` when telemetry is off). Called
    /// by the runners when the run (or epoch) ends.
    pub(crate) fn take_telemetry(&mut self) -> Option<Box<ClusterTelemetry>> {
        self.telemetry.take()
    }

    /// The configured engine-selection mode for the analytic fast path.
    pub(crate) fn fastpath_mode(&self) -> FastPathMode {
        self.config.fastpath()
    }

    /// Whether this configuration is a plain G/G/k FCFS segment the
    /// analytic fast path can run with bit-identical estimates.
    ///
    /// Eligible configurations use only the arrival/attention event pair:
    /// no fault process, no retries, no resilience machinery, no auditing,
    /// no power capper, and no epoch-paced metrics (power, availability,
    /// capping level, or any resilience rate) — every feature that makes
    /// remaining-work tracking or epoch boundaries matter. Idle policies,
    /// DVFS, power models, and both arrival modes are all allowed: they
    /// live inside [`Server`]'s own state fold, which the fast path reuses
    /// verbatim.
    #[must_use]
    pub fn fastpath_eligible(&self) -> bool {
        self.config.faults.is_none()
            && self.config.retry.is_none()
            && self.config.resilience.is_none()
            && self.config.audit.is_none()
            && self.capper.is_none()
            && !self.track_mode
            && self.capping_id.is_none()
            && self.power_id.is_none()
            && self.availability_id.is_none()
            && self.shed_id.is_none()
            && self.hedge_win_id.is_none()
            && self.goodput_id.is_none()
            && self.slo_id.is_none()
            && self.seeded_bug.is_none()
    }

    /// Counts a fast-path entry on the telemetry recorder (no-op with
    /// telemetry off).
    pub(crate) fn note_fastpath_entry(&mut self) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_fastpath_entry();
        }
    }

    /// Counts a fast-path bailout on the telemetry recorder (no-op with
    /// telemetry off).
    pub(crate) fn note_fastpath_bailout(&mut self) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_fastpath_bailout();
        }
    }

    /// Mutation-test hook: arms a deliberately seeded accounting bug. The
    /// audit test suite uses this to prove the auditor catches real
    /// corruption, not just synthetic inputs.
    #[doc(hidden)]
    pub fn seed_bug(&mut self, bug: SeededBug) {
        self.seeded_bug = Some(bug);
        self.bug_pending = true;
    }

    fn record_finished(
        &mut self,
        finished: &[bighouse_models::FinishedJob],
        cal: &mut Calendar<ClusterEvent>,
    ) {
        for f in finished {
            if self.bug_pending && self.seeded_bug == Some(SeededBug::DropCompletion) {
                // Mutation hook: lose this completion entirely — no stats,
                // no ledger retirement, no timeout cancellation. The
                // auditor's completion cross-check must catch the drift.
                self.bug_pending = false;
                continue;
            }
            if self.track_mode && self.zombies.remove(&f.id.raw()).is_some() {
                // An abandoned attempt finishing long after its client
                // gave up: the server really burned the time (it stays in
                // the server's books and the audit cross-check), but the
                // completion is invisible to the client — no response
                // observation, no ledger retirement.
                if let Some(audit) = self.audit.as_deref_mut() {
                    audit.note_completion();
                }
                continue;
            }
            let mut response = f.response_time();
            if self.bug_pending && self.seeded_bug == Some(SeededBug::NanObservation) {
                self.bug_pending = false;
                response = f64::NAN;
            }
            if let Some(audit) = self.audit.as_deref_mut() {
                audit.note_completion();
            }
            self.observe(self.response_id, "response_time", response, cal.now());
            if let Some(id) = self.waiting_id {
                let wait = f.waiting_time();
                // Waiting observations exist only for tasks that queued —
                // the rarity driving Figure 9's "+Waiting" runtimes.
                if wait > 0.0 {
                    self.observe(id, "waiting_time", wait, cal.now());
                }
            }
            if self.track_mode {
                self.retire_completion(f.id.raw(), response, cal);
            }
        }
    }

    /// Retires one tracked completion: the finished job is either a hedge
    /// duplicate (retire its primary and cancel the primary's execution)
    /// or a primary (retire it and cancel its hedge, if one is running).
    /// Retirement happens exactly when the request leaves the map, so a
    /// hedged pair can never be credited twice.
    fn retire_completion(&mut self, fid: u64, response: f64, cal: &mut Calendar<ClusterEvent>) {
        if let Some(primary) = self.hedge_of.remove(&fid) {
            // The hedge finished first: its primary is still running.
            let Some(req) = self.requests.remove(&primary) else {
                return;
            };
            self.n_goodput += 1;
            if let Some(handle) = req.timeout {
                cal.cancel(handle);
            }
            if let Some(handle) = req.hedge_fire {
                cal.cancel(handle);
            }
            if let Some(state) = self.resilience.as_deref_mut() {
                state.hedge_wins += 1;
            }
            self.note_goodput_slo(req.class, response, cal.now());
            if let Some(s) = req.server {
                let now = cal.now();
                let (finished, cancelled) = self.servers[s].cancel_job(JobId::new(primary), now);
                if cancelled {
                    if let Some(state) = self.resilience.as_deref_mut() {
                        state.hedge_cancelled += 1;
                    }
                }
                self.record_finished(&finished, cal);
                self.reschedule_attention(s, now, cal);
            }
            return;
        }
        let Some(mut req) = self.requests.remove(&fid) else {
            return;
        };
        if self.bug_pending
            && self.seeded_bug == Some(SeededBug::DoubleHedgeCompletion)
            && req.hedge.is_some()
        {
            // Mutation hook: credit goodput but keep the request tracked
            // (and its hedge mapping live), so the hedge completion retires
            // the same request a second time. The request ledger must catch
            // the double credit.
            self.bug_pending = false;
            self.n_goodput += 1;
            req.timeout = None;
            req.hedge_fire = None;
            req.server = None;
            self.requests.insert(fid, req);
            return;
        }
        self.n_goodput += 1;
        if let Some(handle) = req.timeout {
            cal.cancel(handle);
        }
        if let Some(handle) = req.hedge_fire {
            cal.cancel(handle);
        }
        self.note_goodput_slo(req.class, response, cal.now());
        if let Some(hedge) = req.hedge.take() {
            // The primary won: cancel the losing duplicate mid-service —
            // the tail-at-scale bet paying off through the calendar's
            // O(log n) cancel.
            self.hedge_of.remove(&hedge.job);
            let now = cal.now();
            let (finished, cancelled) =
                self.servers[hedge.server].cancel_job(JobId::new(hedge.job), now);
            if cancelled {
                if let Some(state) = self.resilience.as_deref_mut() {
                    state.hedge_cancelled += 1;
                }
            }
            self.record_finished(&finished, cal);
            self.reschedule_attention(hedge.server, now, cal);
        }
    }

    /// Per-class and SLO bookkeeping for one goodput retirement.
    fn note_goodput_slo(&mut self, class: u8, response: f64, now: Time) {
        let deadline = self.config.resilience.as_ref().and_then(|r| r.slo_deadline);
        let met = {
            let Some(state) = self.resilience.as_deref_mut() else {
                return;
            };
            if let Some(c) = state.per_class.get_mut(class as usize) {
                c.goodput += 1;
            }
            match deadline {
                Some(d) => {
                    let met = response <= d;
                    if met {
                        state.slo_met += 1;
                        if let Some(c) = state.per_class.get_mut(class as usize) {
                            c.slo_met += 1;
                        }
                    }
                    Some(met)
                }
                None => None,
            }
        };
        if let (Some(id), Some(met)) = (self.slo_id, met) {
            self.observe(id, "slo_attainment", f64::from(u8::from(met)), now);
        }
    }

    fn inject(&mut self, server: usize, now: Time, cal: &mut Calendar<ClusterEvent>) {
        let size = self.config.workload.service().sample(&mut self.rng);
        let job = Job::new(JobId::new(self.job_counter), now, size.max(1e-12));
        self.job_counter += 1;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_queue_depth(self.servers[server].outstanding());
        }
        let finished = self.servers[server].arrive(job, now);
        self.record_finished(&finished, cal);
    }

    /// Admits a request under tracking: runs it past admission control and
    /// class shedding, then samples its size, registers it, arms its
    /// timeout (if a retry policy is set), and places it. A shed arrival
    /// consumes no service-time draw: the request never exists.
    fn admit(&mut self, home: Option<usize>, now: Time, cal: &mut Calendar<ClusterEvent>) {
        let class = self.draw_class();
        if self.resilience.is_some() && !self.admit_gate(class, now) {
            return;
        }
        let size = self.config.workload.service().sample(&mut self.rng);
        let job = Job::new(JobId::new(self.job_counter), now, size.max(1e-12));
        self.job_counter += 1;
        self.n_admitted += 1;
        let key = job.id().raw();
        self.requests.insert(
            key,
            RequestState {
                job,
                attempt: 1,
                home,
                server: None,
                timeout: None,
                pending_redispatch: false,
                class,
                hedge_fire: None,
                hedge: None,
            },
        );
        self.arm_timeout(key, cal);
        self.try_place(key, now, cal);
    }

    /// Draws an arrival's priority class against the cumulative weights
    /// (one RNG draw, only with two or more classes).
    fn draw_class(&mut self) -> u8 {
        let Some(state) = self.resilience.as_deref() else {
            return 0;
        };
        if state.class_cdf.is_empty() {
            return 0;
        }
        let u = self.rng.half_open01();
        let last = state.class_cdf.len() - 1;
        state.class_cdf.iter().position(|&c| u < c).unwrap_or(last) as u8
    }

    /// The front door: counts the offered arrival and decides whether to
    /// admit it. Returns `false` when the arrival is shed — by the bounded
    /// queue, the token bucket, or the class's depth threshold.
    fn admit_gate(&mut self, class: u8, now: Time) -> bool {
        let in_flight = self.requests.len();
        let (admission, shed_threshold) = match self.config.resilience.as_ref() {
            Some(r) => (
                r.admission,
                r.shedding
                    .as_ref()
                    .and_then(|s| s.depth_thresholds.get(class as usize).copied()),
            ),
            None => (None, None),
        };
        let Some(state) = self.resilience.as_deref_mut() else {
            return true;
        };
        state.offered += 1;
        if let Some(c) = state.per_class.get_mut(class as usize) {
            c.offered += 1;
        }
        let mut shed = false;
        match admission {
            Some(AdmissionPolicy::BoundedQueue { capacity }) if in_flight >= capacity => {
                shed = true;
            }
            Some(AdmissionPolicy::TokenBucket { rate, burst }) => {
                let t = now.as_seconds();
                state.tokens = (state.tokens + rate * (t - state.tokens_at).max(0.0)).min(burst);
                state.tokens_at = t;
                if state.tokens >= 1.0 {
                    state.tokens -= 1.0;
                } else {
                    shed = true;
                }
            }
            _ => {}
        }
        if !shed {
            if let Some(threshold) = shed_threshold {
                if in_flight >= threshold {
                    shed = true;
                }
            }
        }
        if shed {
            state.shed += 1;
            if let Some(c) = state.per_class.get_mut(class as usize) {
                c.shed += 1;
            }
        }
        !shed
    }

    /// Arms the client-side timeout for a request, if retries are
    /// configured. The timeout covers an attempt window: it survives
    /// preemptions and strandings, and is re-armed only after a
    /// backoff/redispatch cycle.
    fn arm_timeout(&mut self, key: u64, cal: &mut Calendar<ClusterEvent>) {
        if let Some(policy) = self.config.retry {
            let handle =
                cal.schedule_in(policy.timeout(), ClusterEvent::RequestTimeout { job: key });
            if let Some(req) = self.requests.get_mut(&key) {
                req.timeout = Some(handle);
            }
        }
    }

    /// Places an unassigned request on a live server, or strands it until
    /// a repair frees capacity.
    fn try_place(&mut self, key: u64, now: Time, cal: &mut Calendar<ClusterEvent>) {
        let (job, home) = match self.requests.get(&key) {
            Some(req) => {
                debug_assert!(req.server.is_none(), "placing an already-placed request");
                (req.job, req.home)
            }
            None => return,
        };
        let target = match home {
            Some(h) => (!self.servers[h].is_failed()).then_some(h),
            None => match self.balancer.as_mut() {
                Some(balancer) => {
                    // Route straight off server state — no per-arrival
                    // queue/availability snapshot Vecs.
                    let servers = &self.servers;
                    balancer.pick_available_by(
                        |i| servers[i].outstanding(),
                        |i| !servers[i].is_failed(),
                        &mut self.rng,
                    )
                }
                None => None,
            },
        };
        match target {
            Some(s) => {
                if let Some(req) = self.requests.get_mut(&key) {
                    req.server = Some(s);
                }
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.note_queue_depth(self.servers[s].outstanding());
                }
                let finished = self.servers[s].arrive(job, now);
                self.record_finished(&finished, cal);
                self.reschedule_attention(s, now, cal);
                self.arm_hedge(key, cal);
            }
            None => self.stranded.push_back(key),
        }
    }

    /// Arms the hedge deadline for a freshly placed request, if a hedge
    /// policy is configured and neither a hedge nor a deadline is already
    /// live for it.
    fn arm_hedge(&mut self, key: u64, cal: &mut Calendar<ClusterEvent>) {
        let Some(policy) = self.config.resilience.as_ref().and_then(|r| r.hedge) else {
            return;
        };
        let Some(req) = self.requests.get_mut(&key) else {
            return;
        };
        if req.server.is_none() || req.hedge.is_some() || req.hedge_fire.is_some() {
            return;
        }
        req.hedge_fire =
            Some(cal.schedule_in(policy.deadline, ClusterEvent::HedgeFire { job: key }));
    }

    /// The hedge deadline fired: the request is still unfinished, so
    /// duplicate it to the least-loaded *other* live server. The duplicate
    /// keeps the original arrival time, so whichever copy finishes first
    /// records the true request latency.
    fn handle_hedge_fire(&mut self, key: u64, now: Time, cal: &mut Calendar<ClusterEvent>) {
        let (arrival, primary_server) = match self.requests.get_mut(&key) {
            Some(req) => {
                req.hedge_fire = None;
                if req.hedge.is_some() {
                    return;
                }
                match req.server {
                    Some(s) => (req.job.arrival(), s),
                    // Unplaced (stranded or awaiting a redispatch): the
                    // deadline re-arms at the next placement.
                    None => return,
                }
            }
            None => return, // stale: the request already completed
        };
        // Deterministic target pick — least outstanding work, lowest index
        // on ties; no RNG, so hedging perturbs no other draw.
        let mut target: Option<usize> = None;
        for (i, server) in self.servers.iter().enumerate() {
            if i == primary_server || server.is_failed() {
                continue;
            }
            match target {
                Some(t) if self.servers[t].outstanding() <= server.outstanding() => {}
                _ => target = Some(i),
            }
        }
        let Some(s) = target else {
            return; // nowhere to hedge to right now
        };
        let size = self.config.workload.service().sample(&mut self.rng);
        let hid = self.job_counter;
        self.job_counter += 1;
        let job = Job::new(JobId::new(hid), arrival, size.max(1e-12));
        if let Some(req) = self.requests.get_mut(&key) {
            req.hedge = Some(HedgeJob {
                job: hid,
                server: s,
            });
        }
        self.hedge_of.insert(hid, key);
        if let Some(state) = self.resilience.as_deref_mut() {
            state.hedges_launched += 1;
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_queue_depth(self.servers[s].outstanding());
        }
        let finished = self.servers[s].arrive(job, now);
        self.record_finished(&finished, cal);
        self.reschedule_attention(s, now, cal);
    }

    fn handle_failure(&mut self, server: usize, now: Time, cal: &mut Calendar<ClusterEvent>) {
        let (finished, lost) = self.servers[server].fail(now);
        self.record_finished(&finished, cal);
        self.n_failures += 1;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.rec.counter_add("sim.server_failures", 1);
        }
        // A failed server generates no internal events until its repair.
        self.reschedule_attention(server, now, cal);
        for job in lost {
            self.n_preempted += 1;
            let key = job.id().raw();
            if let Some(primary) = self.hedge_of.remove(&key) {
                // A hedge duplicate died with the server; its primary
                // fights on alone (a fresh deadline re-arms only after a
                // retry redispatch).
                if let Some(req) = self.requests.get_mut(&primary) {
                    req.hedge = None;
                }
                continue;
            }
            match self.requests.get_mut(&key) {
                // The request keeps its running timeout across the
                // preemption; only its placement is reset.
                Some(req) => req.server = None,
                None => continue,
            }
            self.try_place(key, now, cal);
        }
        if let Some(faults) = self.config.faults.as_ref() {
            let down = faults.sample_downtime(&mut self.rng);
            cal.schedule_in(down, ClusterEvent::ServerRepair { server });
        }
    }

    fn handle_repair(&mut self, server: usize, now: Time, cal: &mut Calendar<ClusterEvent>) {
        self.servers[server].repair(now);
        self.reschedule_attention(server, now, cal);
        if let Some(faults) = self.config.faults.as_ref() {
            let up = faults.sample_uptime(&mut self.rng);
            cal.schedule_in(up, ClusterEvent::ServerFailure { server });
        }
        // Give every stranded request one placement chance; those that
        // still have nowhere to go re-strand inside try_place.
        let mut pending = std::mem::take(&mut self.stranded_scratch);
        pending.clear();
        pending.extend(self.stranded.drain(..));
        for &key in &pending {
            let eligible = matches!(
                self.requests.get(&key),
                Some(req) if req.server.is_none() && !req.pending_redispatch
            );
            if eligible {
                self.try_place(key, now, cal);
            }
        }
        self.stranded_scratch = pending;
    }

    fn handle_timeout(&mut self, key: u64, now: Time, cal: &mut Calendar<ClusterEvent>) {
        let Some(policy) = self.config.retry else {
            return;
        };
        let (attempt, server) = match self.requests.get_mut(&key) {
            Some(req) => {
                req.timeout = None; // it just fired
                (req.attempt, req.server)
            }
            None => return, // stale: request already completed
        };
        let abandons = !policy.cancels_on_timeout() && server.is_some();
        if let Some(s) = server {
            if abandons {
                // The client gave up but the server never hears about it:
                // the attempt keeps its queue slot or core and will
                // complete as zombie work. Mark it so record_finished
                // swallows that completion.
                self.zombies.insert(key, ());
            } else {
                let (finished, cancelled) = self.servers[s].cancel_job(JobId::new(key), now);
                self.record_finished(&finished, cal);
                self.reschedule_attention(s, now, cal);
                if !cancelled {
                    // The job completed in the same instant the timeout
                    // fired: the completion wins, and record_finished above
                    // already retired the request as goodput.
                    return;
                }
            }
        }
        // The attempt is over: the hedge (if any) dies with it.
        let (hedge, hedge_fire) = match self.requests.get_mut(&key) {
            Some(req) => (req.hedge.take(), req.hedge_fire.take()),
            None => return,
        };
        if let Some(handle) = hedge_fire {
            cal.cancel(handle);
        }
        if let Some(hedge) = hedge {
            let (finished, cancelled) =
                self.servers[hedge.server].cancel_job(JobId::new(hedge.job), now);
            if cancelled {
                self.hedge_of.remove(&hedge.job);
                if let Some(state) = self.resilience.as_deref_mut() {
                    state.hedge_cancelled += 1;
                }
            }
            // If the hedge completed in this same instant (!cancelled), the
            // completion wins: record_finished retires the request as a
            // hedge win via the still-live hedge_of mapping, and the re-get
            // below comes up empty.
            self.record_finished(&finished, cal);
            self.reschedule_attention(hedge.server, now, cal);
        }
        let Some(req) = self.requests.get_mut(&key) else {
            return;
        };
        if attempt > policy.max_retries() {
            self.n_timed_out += 1;
            self.requests.remove(&key);
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.rec.counter_add("sim.timeouts", 1);
            }
            return;
        }
        self.n_retries += 1;
        req.attempt += 1;
        req.server = None;
        req.pending_redispatch = true;
        let retry_key = if abandons {
            // The old id stays with the zombie: the retry reaches the
            // cluster as a brand-new job under a fresh id, so the request
            // is re-keyed. Old and new attempts now coexist on the
            // servers — the work amplification that fuels a retry storm.
            let mut req = self.requests.remove(&key).expect("fetched above");
            let fresh = self.job_counter;
            self.job_counter += 1;
            req.job = Job::new(JobId::new(fresh), req.job.arrival(), req.job.size());
            self.requests.insert(fresh, req);
            fresh
        } else {
            key
        };
        let delay = policy.backoff_delay(attempt, &mut self.rng);
        cal.schedule_in(delay, ClusterEvent::Redispatch { job: retry_key });
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.rec.counter_add("sim.retries", 1);
        }
    }

    fn handle_redispatch(&mut self, key: u64, now: Time, cal: &mut Calendar<ClusterEvent>) {
        match self.requests.get_mut(&key) {
            Some(req) => {
                req.pending_redispatch = false;
                if req.server.is_some() {
                    return;
                }
            }
            None => return,
        }
        // A retried attempt is a fresh execution, not a replay: its service
        // demand is a fresh draw (the hedge path at `hedge_fire` does the
        // same). Replaying the original draw would make any request whose
        // size exceeds the client timeout unservable on every attempt, and
        // a heavy-tailed workload has enough of those to poison the run.
        // The job id and arrival are preserved so the recorded response
        // time still spans the whole request saga.
        let size = self.config.workload.service().sample(&mut self.rng);
        if let Some(req) = self.requests.get_mut(&key) {
            req.job = Job::new(req.job.id(), req.job.arrival(), size.max(1e-12));
        }
        self.arm_timeout(key, cal);
        self.try_place(key, now, cal);
    }

    fn reschedule_attention(&mut self, server: usize, now: Time, cal: &mut Calendar<ClusterEvent>) {
        if let Some(handle) = self.attention[server].take() {
            cal.cancel(handle);
        }
        if let Some(t) = self.servers[server].next_event() {
            // Guard against sub-nanosecond floating-point drift below `now`.
            let at = t.max(now);
            self.attention[server] = Some(cal.schedule(at, ClusterEvent::Attention { server }));
        }
    }

    fn epoch_tick(&mut self, now: Time, rebudget: bool, cal: &mut Calendar<ClusterEvent>) {
        let mut utilizations = std::mem::take(&mut self.epoch_utilizations);
        utilizations.clear();
        for s in 0..self.servers.len() {
            let finished = self.servers[s].sync(now);
            self.record_finished(&finished, cal);
            utilizations.push(self.servers[s].take_epoch_utilization(now));
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_epoch_utilizations(&utilizations);
        }
        if rebudget {
            if let Some(capper) = self.capper.as_ref() {
                let outcome = capper.rebudget(&utilizations);
                let total_capping = outcome.total_capping_level();
                for s in 0..self.servers.len() {
                    let finished = self.servers[s].set_frequency(outcome.frequencies[s], now);
                    self.record_finished(&finished, cal);
                }
                if let Some(id) = self.capping_id {
                    // One cluster-level observation per budgeting epoch: the
                    // metric's pace is set by simulated time, not request rate.
                    self.observe(id, "capping_level", total_capping, now);
                }
            }
        }
        let epoch = self.capper.as_ref().map_or(
            PowerCapper::DEFAULT_EPOCH_SECONDS,
            PowerCapper::epoch_seconds,
        );
        if let Some(id) = self.power_id {
            for s in 0..self.servers.len() {
                let energy = self.servers[s].energy_joules();
                let watts = (energy - self.energy_marks[s]) / epoch;
                self.energy_marks[s] = energy;
                self.observe(id, "server_power", watts, now);
            }
        }
        if let Some(id) = self.availability_id {
            // Per-server per-epoch fraction of the epoch spent up; the mean
            // converges on MTBF / (MTBF + MTTR) for an alternating renewal
            // failure process.
            for s in 0..self.servers.len() {
                let failed = self.servers[s].failed_seconds();
                let delta = failed - self.failed_marks[s];
                self.failed_marks[s] = failed;
                self.observe(
                    id,
                    "availability",
                    (1.0 - delta / epoch).clamp(0.0, 1.0),
                    now,
                );
            }
        }
        // Resilience rates are epoch-paced like power/availability: one
        // observation per epoch from the counter deltas since the last
        // tick, each metric against its own mark so deltas never couple.
        let (shed_rate, hedge_win_rate, goodput_fraction) = {
            let n_goodput = self.n_goodput;
            let n_timed_out = self.n_timed_out;
            match self.resilience.as_deref_mut() {
                Some(state) => {
                    let offered_d = state.offered - state.offered_mark;
                    let shed_d = state.shed - state.shed_rate_mark;
                    state.offered_mark = state.offered;
                    state.shed_rate_mark = state.shed;
                    let shed_rate = (offered_d > 0).then(|| shed_d as f64 / offered_d as f64);

                    let launched_d = state.hedges_launched - state.hedge_launch_mark;
                    let wins_d = state.hedge_wins - state.hedge_win_mark;
                    state.hedge_launch_mark = state.hedges_launched;
                    state.hedge_win_mark = state.hedge_wins;
                    let hedge_win_rate =
                        (launched_d > 0).then(|| wins_d as f64 / launched_d as f64);

                    let goodput_d = n_goodput - state.goodput_mark;
                    let timed_out_d = n_timed_out - state.timed_out_mark;
                    let shed_g_d = state.shed - state.shed_goodput_mark;
                    state.goodput_mark = n_goodput;
                    state.timed_out_mark = n_timed_out;
                    state.shed_goodput_mark = state.shed;
                    let disposed = goodput_d + timed_out_d + shed_g_d;
                    let goodput_fraction =
                        (disposed > 0).then(|| goodput_d as f64 / disposed as f64);
                    (shed_rate, hedge_win_rate, goodput_fraction)
                }
                None => (None, None, None),
            }
        };
        if let (Some(id), Some(x)) = (self.shed_id, shed_rate) {
            self.observe(id, "shed_rate", x, now);
        }
        if let (Some(id), Some(x)) = (self.hedge_win_id, hedge_win_rate) {
            self.observe(id, "hedge_win_rate", x, now);
        }
        if let (Some(id), Some(x)) = (self.goodput_id, goodput_fraction) {
            self.observe(id, "goodput_fraction", x, now);
        }
        for s in 0..self.servers.len() {
            self.reschedule_attention(s, now, cal);
        }
        self.epoch_utilizations = utilizations;
    }
}

impl Simulation for ClusterSim {
    type Event = ClusterEvent;

    fn handle(
        &mut self,
        now: Time,
        event: ClusterEvent,
        cal: &mut Calendar<ClusterEvent>,
    ) -> Control {
        match event {
            ClusterEvent::Arrival { server } => {
                if self.track_mode {
                    self.admit(Some(server), now, cal);
                } else {
                    self.inject(server, now, cal);
                    self.reschedule_attention(server, now, cal);
                }
                let dt = self.next_interarrival(now);
                cal.schedule_in(dt, ClusterEvent::Arrival { server });
            }
            ClusterEvent::BalancedArrival => {
                if self.track_mode {
                    self.admit(None, now, cal);
                } else {
                    // Route straight off server state — no per-arrival
                    // queue-length snapshot Vec.
                    let picked = {
                        let servers = &self.servers;
                        self.balancer
                            .as_mut()
                            .map(|b| b.pick_by(|i| servers[i].outstanding(), &mut self.rng))
                    };
                    if let Some(server) = picked {
                        self.inject(server, now, cal);
                        self.reschedule_attention(server, now, cal);
                    }
                }
                let dt = self.next_interarrival(now);
                cal.schedule_in(dt, ClusterEvent::BalancedArrival);
            }
            ClusterEvent::Attention { server } => {
                self.attention[server] = None;
                let finished = self.servers[server].sync(now);
                self.record_finished(&finished, cal);
                self.reschedule_attention(server, now, cal);
            }
            ClusterEvent::CappingEpoch => {
                self.epoch_tick(now, true, cal);
                let epoch = self.capper.as_ref().map_or(
                    PowerCapper::DEFAULT_EPOCH_SECONDS,
                    PowerCapper::epoch_seconds,
                );
                cal.schedule_in(epoch, ClusterEvent::CappingEpoch);
            }
            ClusterEvent::ObservationEpoch => {
                self.epoch_tick(now, false, cal);
                cal.schedule_in(
                    PowerCapper::DEFAULT_EPOCH_SECONDS,
                    ClusterEvent::ObservationEpoch,
                );
            }
            ClusterEvent::ServerFailure { server } => {
                self.handle_failure(server, now, cal);
            }
            ClusterEvent::ServerRepair { server } => {
                self.handle_repair(server, now, cal);
            }
            ClusterEvent::RequestTimeout { job } => {
                self.handle_timeout(job, now, cal);
            }
            ClusterEvent::Redispatch { job } => {
                self.handle_redispatch(job, now, cal);
            }
            ClusterEvent::HedgeFire { job } => {
                self.handle_hedge_fire(job, now, cal);
            }
        }
        if self.bug_pending && self.seeded_bug == Some(SeededBug::Livelock) {
            // Mutation hook: reschedule at `now` from every handler — a
            // zero-advance livelock for the progress guard to break.
            cal.schedule(now, ClusterEvent::Attention { server: 0 });
        }
        if self.audit_tick(now) {
            return Control::Stop;
        }
        if self.stop_on_convergence && self.stats.all_converged() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// A vacant slot in the fast engine's virtual calendar. No real key can
/// collide with it: the high 64 bits of a key are the bit pattern of a
/// finite timestamp, and all-ones would be NaN.
const VACANT: u128 = u128::MAX;

/// The analytic fast-path engine for eligible (plain G/G/k FCFS) clusters.
///
/// An eligible configuration's calendar only ever holds one arrival event
/// per stream plus at most one attention event per server — a fixed,
/// statically known population. The fast engine exploits that: instead of
/// a binary heap with handle indirection, pending events live in fixed
/// slots as packed `(time, seq)` keys (the exact key format the real
/// [`Calendar`] sorts by), and the next event is a linear minimum scan.
/// Handler dispatch, event payloads, and `EventHandle` bookkeeping all
/// disappear; service/interarrival draws go through [`QuantileGuide`]
/// (bit-identical to the unguided sampler, byte-for-byte the same RNG
/// stream); completions land in one reusable buffer instead of a fresh
/// `Vec` per event.
///
/// **Bit-identity contract**: the engine replays the calendar engine's
/// exact semantics — the same RNG draws in the same order, the same
/// scheduling sequence numbers (so time ties break identically), the same
/// observation order into the same [`StatsCollection`], and the same
/// convergence-stop boundaries. Estimates are bit-identical, not merely
/// statistically equivalent. The emulated [`CalendarStats`] match the real
/// engine's except `sift_steps` (always zero: there is no heap to sift).
#[derive(Debug)]
pub(crate) struct FastEngine {
    sim: ClusterSim,
    now: Time,
    /// One slot per arrival stream: each server's stream in per-server
    /// mode, or the single balanced front-end stream (slot 0).
    arrival_keys: Vec<u128>,
    /// One slot per server for its pending attention event.
    attention_keys: Vec<u128>,
    /// Mirrors the real calendar's scheduling sequence counter, so packed
    /// keys — and therefore time-tie ordering — are identical.
    next_seq: u64,
    /// Occupied slots (the emulated calendar depth).
    pending: usize,
    scheduled: u64,
    fired: u64,
    cancelled: u64,
    depth_high_water: usize,
    service_guide: QuantileGuide,
    interarrival_guide: QuantileGuide,
    /// Reusable completion buffer (the "batch" in batched departures).
    finished: Vec<FinishedJob>,
    /// Cached convergence verdict. `StatsCollection` phases only change
    /// when an observation is recorded, so the flag is refreshed after
    /// exactly those events — the stop fires at the same event boundary
    /// the calendar engine's per-event check would find.
    should_stop: bool,
}

impl FastEngine {
    /// Builds the engine and primes the virtual calendar, replicating
    /// [`ClusterSim::prime`]'s draw order for an eligible configuration.
    pub(crate) fn new(mut sim: ClusterSim) -> Self {
        debug_assert!(sim.fastpath_eligible(), "fast engine on ineligible sim");
        sim.note_fastpath_entry();
        let n = sim.servers.len();
        let service_guide = QuantileGuide::new(sim.config.workload.service());
        let interarrival_guide = QuantileGuide::new(sim.config.workload.interarrival());
        let streams = match sim.config.arrival_mode {
            ArrivalMode::PerServer => n,
            ArrivalMode::LoadBalanced(_) => 1,
        };
        let mut engine = FastEngine {
            sim,
            now: Time::ZERO,
            arrival_keys: vec![VACANT; streams],
            attention_keys: vec![VACANT; n],
            next_seq: 0,
            pending: 0,
            scheduled: 0,
            fired: 0,
            cancelled: 0,
            depth_high_water: 0,
            service_guide,
            interarrival_guide,
            finished: Vec::new(),
            should_stop: false,
        };
        for stream in 0..streams {
            let dt = engine.next_interarrival();
            engine.arrival_keys[stream] = engine.pack(engine.now + dt);
        }
        // Restored (resumed-epoch) statistics may already be converged;
        // the calendar engine would stop at the very first event.
        engine.should_stop =
            engine.sim.stop_on_convergence && engine.sim.stats.all_converged();
        engine
    }

    /// Mirrors [`Engine::run_with_limit`] exactly.
    pub(crate) fn run_with_limit(&mut self, max_events: u64) -> RunStats {
        let mut stats = RunStats::default();
        while stats.events_fired < max_events {
            if !self.fire_next() {
                return stats;
            }
            stats.events_fired += 1;
            if self.should_stop {
                stats.stopped_by_simulation = true;
                return stats;
            }
        }
        stats.hit_event_limit = true;
        stats
    }

    /// Current simulated time (the timestamp of the last fired event).
    pub(crate) fn now(&self) -> Time {
        self.now
    }

    pub(crate) fn simulation(&self) -> &ClusterSim {
        &self.sim
    }

    pub(crate) fn simulation_mut(&mut self) -> &mut ClusterSim {
        &mut self.sim
    }

    pub(crate) fn into_simulation(self) -> ClusterSim {
        self.sim
    }

    /// The emulated calendar counters (zero sift steps: no heap).
    pub(crate) fn calendar_stats(&self) -> CalendarStats {
        CalendarStats {
            scheduled: self.scheduled,
            fired: self.fired,
            cancelled: self.cancelled,
            depth_high_water: self.depth_high_water,
            sift_steps: 0,
        }
    }

    /// Packs `(at, seq)` into the real calendar's sort-key format,
    /// consuming one sequence number and counting the schedule.
    fn pack(&mut self, at: Time) -> u128 {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.pending += 1;
        if self.pending > self.depth_high_water {
            self.depth_high_water = self.pending;
        }
        // `+ 0.0` normalizes -0.0 to +0.0, exactly as the real calendar's
        // key packing does.
        (u128::from((at.as_seconds() + 0.0).to_bits()) << 64) | u128::from(seq)
    }

    /// One workload interarrival draw through the guided sampler — the
    /// identical value and stream position as `ClusterSim::next_interarrival`
    /// (no ramp: resilience is fast-path ineligible).
    fn next_interarrival(&mut self) -> f64 {
        let bits = self.sim.rng.raw_u64();
        self.interarrival_guide.sample_from_bits(bits)
    }

    /// Pops and handles the earliest pending event. Returns `false` when
    /// the virtual calendar is empty (mirroring a drained real calendar).
    fn fire_next(&mut self) -> bool {
        let mut best = VACANT;
        let mut slot = 0usize;
        for (i, &k) in self.arrival_keys.iter().enumerate() {
            if k < best {
                best = k;
                slot = i;
            }
        }
        let arrivals = self.arrival_keys.len();
        for (s, &k) in self.attention_keys.iter().enumerate() {
            if k < best {
                best = k;
                slot = arrivals + s;
            }
        }
        if best == VACANT {
            return false;
        }
        self.now = Time::from_seconds(f64::from_bits((best >> 64) as u64));
        self.pending -= 1;
        self.fired += 1;
        let recorded = if slot < arrivals {
            self.arrival_keys[slot] = VACANT;
            self.handle_arrival(slot)
        } else {
            let server = slot - arrivals;
            self.attention_keys[server] = VACANT;
            self.handle_attention(server)
        };
        if recorded && self.sim.stop_on_convergence {
            self.should_stop = self.sim.stats.all_converged();
        }
        true
    }

    /// Replays `ClusterEvent::Arrival` / `ClusterEvent::BalancedArrival`
    /// for stream `stream`, in the calendar handler's exact order: inject,
    /// reschedule attention, draw the next interarrival, schedule it.
    fn handle_arrival(&mut self, stream: usize) -> bool {
        let now = self.now;
        let server = match self.sim.config.arrival_mode {
            ArrivalMode::PerServer => Some(stream),
            ArrivalMode::LoadBalanced(_) => {
                let servers = &self.sim.servers;
                self.sim
                    .balancer
                    .as_mut()
                    .map(|b| b.pick_by(|i| servers[i].outstanding(), &mut self.sim.rng))
            }
        };
        let mut recorded = false;
        if let Some(server) = server {
            recorded = self.inject(server, now);
            self.reschedule_attention(server, now);
        }
        let dt = self.next_interarrival();
        assert!(
            dt.is_finite() && dt >= 0.0,
            "event delay must be finite and non-negative, got {dt}"
        );
        self.arrival_keys[stream] = self.pack(now + dt);
        recorded
    }

    /// Replays `ClusterEvent::Attention` for `server`: fold the server
    /// forward, record its completions, re-arm its next event.
    fn handle_attention(&mut self, server: usize) -> bool {
        let now = self.now;
        self.finished.clear();
        self.sim.servers[server].sync_into(now, &mut self.finished);
        let recorded = self.record_finished(now);
        self.reschedule_attention(server, now);
        recorded
    }

    /// Replays `ClusterSim::inject`: one guided service draw, the job
    /// lands on `server`, completions recorded. Returns whether any
    /// observation was recorded.
    fn inject(&mut self, server: usize, now: Time) -> bool {
        let bits = self.sim.rng.raw_u64();
        let size = self.service_guide.sample_from_bits(bits);
        let job = Job::new(JobId::new(self.sim.job_counter), now, size.max(1e-12));
        self.sim.job_counter += 1;
        if let Some(t) = self.sim.telemetry.as_deref_mut() {
            t.note_queue_depth(self.sim.servers[server].outstanding());
        }
        self.finished.clear();
        self.sim.servers[server].arrive_into(job, now, &mut self.finished);
        self.record_finished(now)
    }

    /// Replays `ClusterSim::record_finished` for the eligible feature set
    /// (no audit vetting, no zombies, no request tracking), in the same
    /// observation order.
    fn record_finished(&mut self, now: Time) -> bool {
        if self.finished.is_empty() {
            return false;
        }
        if let Some(t) = self.sim.telemetry.as_deref_mut() {
            t.note_fastpath_batched_departures(self.finished.len() as u64);
        }
        for f in &self.finished {
            self.sim
                .observe(self.sim.response_id, "response_time", f.response_time(), now);
            if let Some(id) = self.sim.waiting_id {
                let wait = f.waiting_time();
                if wait > 0.0 {
                    self.sim.observe(id, "waiting_time", wait, now);
                }
            }
        }
        true
    }

    /// Replays `ClusterSim::reschedule_attention` against the virtual
    /// calendar: cancel the stale attention (consuming no sequence number,
    /// like the real `Calendar::cancel`), then schedule the server's next
    /// internal event, if any.
    fn reschedule_attention(&mut self, server: usize, now: Time) {
        if self.attention_keys[server] != VACANT {
            self.attention_keys[server] = VACANT;
            self.pending -= 1;
            self.cancelled += 1;
        }
        if let Some(t) = self.sim.servers[server].next_event() {
            let at = t.max(now);
            self.attention_keys[server] = self.pack(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bighouse_des::Engine;
    use bighouse_faults::{FaultProcess, RetryPolicy};
    use bighouse_workloads::{StandardWorkload, Workload};

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
            .with_utilization(0.5)
            .with_target_accuracy(0.2)
            .with_warmup(50)
            .with_calibration(500)
    }

    fn run(config: ExperimentConfig, seed: u64) -> (ClusterSim, Time, u64) {
        let mut sim = ClusterSim::new(config, seed).expect("valid config");
        let mut cal = Calendar::new();
        sim.prime(&mut cal);
        let mut engine = Engine::from_parts(sim, cal);
        let stats = engine.run_with_limit(20_000_000);
        let now = engine.now();
        (engine.into_simulation(), now, stats.events_fired)
    }

    /// Runs `config` through the calendar engine and the fast engine with
    /// the same seed and asserts bit-identical outcomes: event counts,
    /// clocks, job counters, RNG stream position, per-metric sample
    /// bookkeeping, and every estimate down to the last mantissa bit.
    fn assert_engines_bit_identical(config: ExperimentConfig, seed: u64) {
        let (mut cal_sim, cal_now, cal_events) = run(config.clone(), seed);
        let fast_sim = ClusterSim::new(config, seed).expect("valid config");
        assert!(fast_sim.fastpath_eligible(), "config must be eligible");
        let mut fast = FastEngine::new(fast_sim);
        let fast_stats = fast.run_with_limit(20_000_000);
        let fast_now = fast.now();
        let mut fast_sim = fast.into_simulation();

        assert_eq!(cal_events, fast_stats.events_fired, "event count differs");
        assert_eq!(
            cal_now.as_seconds().to_bits(),
            fast_now.as_seconds().to_bits(),
            "final clock differs"
        );
        assert_eq!(cal_sim.job_counter, fast_sim.job_counter);
        // Both engines must have consumed the RNG stream draw-for-draw:
        // the next raw output matches only if every position did.
        assert_eq!(cal_sim.rng.raw_u64(), fast_sim.rng.raw_u64());
        for (a, b) in cal_sim.stats.iter().zip(fast_sim.stats.iter()) {
            assert_eq!(a.kept_count(), b.kept_count());
            assert_eq!(a.lag(), b.lag());
            assert_eq!(a.total_observed(), b.total_observed());
            assert_eq!(a.measurement_seen(), b.measurement_seen());
            assert_eq!(a.is_converged(), b.is_converged());
            let (ea, eb) = match (a.estimate(), b.estimate()) {
                (Some(ea), Some(eb)) => (ea, eb),
                (None, None) => continue,
                _ => panic!("one engine produced an estimate, the other none"),
            };
            assert_eq!(ea.mean.to_bits(), eb.mean.to_bits(), "mean differs");
            assert_eq!(ea.std_dev.to_bits(), eb.std_dev.to_bits());
            assert_eq!(ea.mean_half_width.to_bits(), eb.mean_half_width.to_bits());
            assert_eq!(ea.quantiles.len(), eb.quantiles.len());
            for (qa, qb) in ea.quantiles.iter().zip(eb.quantiles.iter()) {
                assert_eq!(
                    qa.value.to_bits(),
                    qb.value.to_bits(),
                    "q{} differs",
                    qa.q
                );
            }
        }
    }

    #[test]
    fn fast_engine_bit_identical_single_server() {
        assert_engines_bit_identical(quick_config(), 11);
    }

    #[test]
    fn fast_engine_bit_identical_per_server_cluster_with_waiting() {
        assert_engines_bit_identical(
            quick_config()
                .with_servers(4)
                .with_metric(MetricKind::WaitingTime),
            12,
        );
    }

    #[test]
    fn fast_engine_bit_identical_load_balanced_jsq() {
        use bighouse_models::BalancerPolicy;
        let config = ExperimentConfig::new(
            quick_config()
                .workload()
                .with_interarrival_scale(0.25)
                .unwrap(),
        )
        .with_servers(4)
        .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
        .with_target_accuracy(0.2)
        .with_warmup(50)
        .with_calibration(500);
        assert_engines_bit_identical(config, 13);
    }

    #[test]
    fn fast_engine_bit_identical_load_balanced_random_policy() {
        // Random placement draws from the RNG inside the balancer; the fast
        // path must keep even those draws in the identical stream position.
        use bighouse_models::BalancerPolicy;
        let config = ExperimentConfig::new(
            quick_config()
                .workload()
                .with_interarrival_scale(0.25)
                .unwrap(),
        )
        .with_servers(4)
        .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::Random))
        .with_target_accuracy(0.2)
        .with_warmup(50)
        .with_calibration(500);
        assert_engines_bit_identical(config, 14);
    }

    #[test]
    fn fast_engine_emulated_calendar_stats_match() {
        let config = quick_config().with_servers(2);
        let mut sim = ClusterSim::new(config.clone(), 15).expect("valid config");
        let mut cal = Calendar::new();
        sim.prime(&mut cal);
        let mut engine = Engine::from_parts(sim, cal);
        engine.run_with_limit(20_000_000);
        let real = engine.calendar().stats();

        let fast_sim = ClusterSim::new(config, 15).expect("valid config");
        let mut fast = FastEngine::new(fast_sim);
        fast.run_with_limit(20_000_000);
        let emulated = fast.calendar_stats();

        assert_eq!(real.scheduled, emulated.scheduled);
        assert_eq!(real.fired, emulated.fired);
        assert_eq!(real.cancelled, emulated.cancelled);
        assert_eq!(real.depth_high_water, emulated.depth_high_water);
        assert_eq!(emulated.sift_steps, 0, "virtual calendar never sifts");
    }

    #[test]
    fn fastpath_eligibility_tracks_config_features() {
        use crate::resilience::ResilienceConfig;

        let eligible = ClusterSim::new(quick_config(), 1).unwrap();
        assert!(eligible.fastpath_eligible());

        let faulty = ClusterSim::new(
            quick_config().with_faults(FaultProcess::exponential(50.0, 2.0).unwrap()),
            1,
        )
        .unwrap();
        assert!(!faulty.fastpath_eligible(), "faults disarm the fast path");

        let retrying =
            ClusterSim::new(quick_config().with_retry(RetryPolicy::new(1.0)), 1).unwrap();
        assert!(!retrying.fastpath_eligible(), "retries disarm the fast path");

        let resilient = ClusterSim::new(
            quick_config().with_resilience(ResilienceConfig::new()),
            1,
        )
        .unwrap();
        assert!(
            !resilient.fastpath_eligible(),
            "resilience disarms the fast path"
        );

        let mut bugged = ClusterSim::new(quick_config(), 1).unwrap();
        bugged.seed_bug(SeededBug::DropCompletion);
        assert!(
            !bugged.fastpath_eligible(),
            "seeded bugs disarm the fast path"
        );
    }

    #[test]
    fn single_server_run_converges() {
        let (sim, now, events) = run(quick_config(), 1);
        assert!(
            sim.stats().all_converged(),
            "did not converge in event budget"
        );
        assert!(events > 1000);
        let summary = sim.summary(now);
        assert!(summary.jobs_completed > 1000);
        // No fault machinery engaged without faults/retry configured.
        assert!(summary.faults.is_none());
        // Utilization should be near the configured 50%.
        assert!(
            (summary.mean_utilization - 0.5).abs() < 0.1,
            "utilization {}",
            summary.mean_utilization
        );
    }

    #[test]
    fn response_estimate_exceeds_service_mean() {
        // Tight accuracy: with the Web workload's Cv = 3.4 service times, a
        // coarse sample's mean fluctuates far too much for this check.
        let (sim, _, _) = run(quick_config().with_target_accuracy(0.05), 2);
        let est = sim
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        assert!(
            est.mean >= service_mean * 0.9,
            "response {} cannot be below service mean {service_mean}",
            est.mean
        );
    }

    #[test]
    fn multi_server_per_stream_mode() {
        let (sim, now, _) = run(quick_config().with_servers(4), 3);
        assert!(sim.stats().all_converged());
        let summary = sim.summary(now);
        assert_eq!(summary.servers, 4);
    }

    #[test]
    fn load_balanced_mode_distributes_work() {
        use bighouse_models::BalancerPolicy;
        let config = quick_config()
            .with_servers(4)
            .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue));
        // Balanced mode shares one arrival stream; rescale it so the whole
        // cluster (not each server) sees 50% load: the per-server stream is
        // already at 0.5 for 4 cores, so divide inter-arrivals by 4.
        let config =
            ExperimentConfig::new(config.workload().with_interarrival_scale(0.25).unwrap())
                .with_servers(4)
                .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
                .with_target_accuracy(0.2)
                .with_warmup(50)
                .with_calibration(500);
        let (sim, now, _) = run(config, 4);
        assert!(sim.stats().all_converged());
        let summary = sim.summary(now);
        for s in &sim.servers {
            assert!(
                s.completed_jobs() > 100,
                "server starved: {}",
                s.completed_jobs()
            );
        }
        assert!((summary.mean_utilization - 0.5).abs() < 0.15);
    }

    #[test]
    fn capping_epoch_throttles_overloaded_cluster() {
        use bighouse_models::{DvfsModel, LinearPowerModel};
        // Budget below what two busy servers want: capping must engage.
        let capper = PowerCapper::new(
            LinearPowerModel::typical_server(),
            DvfsModel::default(),
            250.0,
        );
        let config = quick_config()
            .with_servers(2)
            .with_utilization(0.8)
            .with_capper(capper)
            .with_metric(MetricKind::CappingLevel)
            .with_warmup(100)
            .with_calibration(300)
            .with_max_events(5_000_000);
        let (sim, _, _) = run(config, 5);
        let capping = sim.stats().metric_by_name("capping_level").unwrap();
        let est = capping.estimate().expect("capping metric observed");
        assert!(est.mean > 0.0, "tight budget must produce capping");
    }

    #[test]
    fn power_metric_without_capper_uses_observation_epochs() {
        use bighouse_models::LinearPowerModel;
        let config = quick_config()
            .with_power_model(LinearPowerModel::typical_server())
            .with_metric(MetricKind::ServerPower)
            .with_warmup(20)
            .with_calibration(200)
            .with_max_events(10_000_000);
        let (sim, now, _) = run(config, 6);
        let power = sim.stats().metric_by_name("server_power").unwrap();
        assert!(power.total_observed() > 0, "power epochs must fire");
        let summary = sim.summary(now);
        assert!(summary.average_power_watts > 100.0);
        assert!(summary.average_power_watts < 200.0);
    }

    #[test]
    fn timeout_nap_policy_accumulates_nap_time() {
        use bighouse_models::IdlePolicy;
        // Light load on a big server: long idle gaps exceed the timeout.
        let config = quick_config()
            .with_cores(8)
            .with_utilization(0.1)
            .with_idle_policy(IdlePolicy::TimeoutNap {
                idle_timeout: 0.02,
                wake_latency: 0.001,
            });
        let (sim, now, _) = run(config, 12);
        let summary = sim.summary(now);
        assert!(
            summary.mean_nap_fraction > 0.1,
            "timeout policy should nap at 10% load, got {}",
            summary.mean_nap_fraction
        );
        // Napping never exceeds full idleness.
        assert!(summary.mean_nap_fraction <= summary.mean_full_idle_fraction + 1e-9);
    }

    #[test]
    fn quantile_value_ci_is_reported() {
        let (sim, _, _) = run(quick_config(), 13);
        let est = sim
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        let p95 = est.quantiles.iter().find(|q| q.q == 0.95).unwrap();
        let hv = p95.half_width_value.expect("density is estimable");
        assert!(
            hv > 0.0 && hv < p95.value,
            "value CI {hv} vs p95 {}",
            p95.value
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, now_a, ev_a) = run(quick_config(), 7);
        let (b, now_b, ev_b) = run(quick_config(), 7);
        assert_eq!(now_a, now_b);
        assert_eq!(ev_a, ev_b);
        let ea = a
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        let eb = b
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        assert_eq!(ea.mean, eb.mean);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, ..) = run(quick_config(), 8);
        let (b, ..) = run(quick_config(), 9);
        let ea = a
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        let eb = b
            .stats()
            .metric_by_name("response_time")
            .unwrap()
            .estimate()
            .unwrap();
        assert_ne!(ea.mean, eb.mean);
    }

    #[test]
    fn slave_does_not_stop_on_convergence() {
        let mut master = ClusterSim::new(quick_config(), 10).unwrap();
        let mut cal = Calendar::new();
        master.prime(&mut cal);
        let mut engine = Engine::from_parts(master, cal);
        engine.run_with_limit(20_000_000);
        let specs = engine.simulation().histogram_specs();
        assert!(!specs.is_empty());

        let mut slave = ClusterSim::new_slave(quick_config(), 11, &specs).unwrap();
        let mut cal = Calendar::new();
        slave.prime(&mut cal);
        let mut engine = Engine::from_parts(slave, cal);
        let stats = engine.run_with_limit(2_000_000);
        assert!(
            !stats.stopped_by_simulation,
            "slaves must keep simulating until told to stop"
        );
        // The slave adopted the master's bin scheme.
        let slave_specs = engine.simulation().histogram_specs();
        assert_eq!(slave_specs["response_time"], specs["response_time"]);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let bad = quick_config().with_metric(MetricKind::CappingLevel);
        assert!(matches!(
            ClusterSim::new(bad, 1),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn fault_injection_tracks_availability() {
        // MTBF 20 s, MTTR 2 s: analytic availability 10/11 ≈ 0.909.
        let faults = FaultProcess::exponential(20.0, 2.0).unwrap();
        let analytic = faults.availability();
        let config = quick_config()
            .with_servers(4)
            .with_faults(faults)
            .with_metric(MetricKind::Availability)
            .with_calibration(200);
        let (sim, now, _) = run(config, 21);
        let est = sim
            .stats()
            .metric_by_name("availability")
            .unwrap()
            .estimate()
            .expect("availability epochs observed");
        let tolerance = (2.0 * est.mean_half_width).max(0.08);
        assert!(
            (est.mean - analytic).abs() < tolerance,
            "availability {} vs analytic {analytic} (tolerance {tolerance})",
            est.mean
        );
        let summary = sim.summary(now);
        let fs = summary.faults.expect("fault mode on");
        assert!(fs.server_failures > 0, "no failures injected");
        assert!(fs.mean_failed_fraction > 0.0 && fs.mean_failed_fraction < 0.3);
    }

    #[test]
    fn retry_accounting_is_exact() {
        use bighouse_models::BalancerPolicy;
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        let config = ExperimentConfig::new(
            quick_config()
                .workload()
                .with_interarrival_scale(0.25)
                .unwrap(),
        )
        .with_servers(4)
        .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
        .with_target_accuracy(0.2)
        .with_warmup(50)
        .with_calibration(500)
        .with_faults(FaultProcess::exponential(20.0, 2.0).unwrap())
        .with_retry(RetryPolicy::new(service_mean * 50.0));
        let (sim, now, _) = run(config, 22);
        let summary = sim.summary(now);
        let fs = summary.faults.expect("fault mode on");
        assert!(fs.goodput > 1000, "goodput {}", fs.goodput);
        assert!(fs.server_failures > 0);
        assert!(fs.preempted_jobs > 0, "failures should preempt work");
        // Every admitted request is accounted for exactly once.
        assert_eq!(
            fs.goodput + fs.timed_out + fs.in_flight_at_end,
            fs.admitted,
            "{fs:?}"
        );
    }

    #[test]
    fn tight_timeouts_exhaust_retry_budget() {
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        // A timeout well below the mean service time dooms most requests.
        let retry = RetryPolicy::new(service_mean * 0.1).with_max_retries(2);
        let config = quick_config().with_retry(retry).with_max_events(2_000_000);
        let (sim, now, _) = run(config, 23);
        let summary = sim.summary(now);
        let fs = summary.faults.expect("retry implies fault mode");
        assert!(fs.timed_out > 100, "timed_out {}", fs.timed_out);
        // Each dropped request consumed its full retry budget.
        assert!(fs.retries >= fs.timed_out * 2, "{fs:?}");
        assert_eq!(fs.goodput + fs.timed_out + fs.in_flight_at_end, fs.admitted);
        assert_eq!(fs.server_failures, 0, "no fault process configured");
    }

    #[test]
    fn abandoned_attempts_finish_as_zombie_work() {
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        // Timeouts fire while attempts hold cores, and the client walks
        // away instead of cancelling: the abandoned attempts must run to
        // completion as zombies, so the servers complete strictly more
        // jobs than the request ledger retires as goodput. The load is
        // kept low enough that zombie amplification stays subcritical
        // (0.25 x 2 attempts < 1) — the run must still converge.
        let retry = RetryPolicy::new(service_mean * 0.5)
            .with_max_retries(1)
            .with_cancel_on_timeout(false);
        let config = quick_config()
            .with_utilization(0.25)
            .with_retry(retry)
            .with_max_events(2_000_000);
        let (sim, now, _) = run(config, 23);
        let summary = sim.summary(now);
        let fs = summary.faults.expect("retry implies fault mode");
        assert!(fs.timed_out > 50, "timed_out {}", fs.timed_out);
        // The request ledger still balances exactly — zombies are server
        // work, not tracked requests.
        assert_eq!(fs.goodput + fs.timed_out + fs.in_flight_at_end, fs.admitted);
        assert!(
            summary.jobs_completed > fs.goodput + fs.timed_out / 2,
            "zombie completions missing from the server books: {} jobs for {fs:?}",
            summary.jobs_completed
        );
    }

    #[test]
    fn fault_mode_is_deterministic_given_seed() {
        let make = || {
            quick_config()
                .with_servers(2)
                .with_faults(FaultProcess::exponential(15.0, 1.5).unwrap())
                .with_retry(RetryPolicy::new(1.0))
                .with_metric(MetricKind::Availability)
                .with_calibration(200)
        };
        let (a, now_a, ev_a) = run(make(), 31);
        let (b, now_b, ev_b) = run(make(), 31);
        assert_eq!(now_a, now_b);
        assert_eq!(ev_a, ev_b);
        assert_eq!(a.summary(now_a).faults, b.summary(now_b).faults);
    }

    #[test]
    fn bounded_queue_sheds_and_ledger_balances() {
        use crate::resilience::ResilienceConfig;
        // One quad-core server at 90% load with only 6 requests allowed in
        // flight: the queue saturates and the front door must shed.
        let config = quick_config()
            .with_utilization(0.9)
            .with_resilience(
                ResilienceConfig::new()
                    .with_admission(AdmissionPolicy::BoundedQueue { capacity: 6 }),
            )
            .with_max_events(2_000_000);
        let (sim, now, _) = run(config, 41);
        let summary = sim.summary(now);
        assert!(summary.faults.is_none(), "no fault process configured");
        let rs = summary.resilience.expect("resilience mode on");
        assert!(rs.offered > 1000, "offered {}", rs.offered);
        assert!(rs.shed > 0, "a saturated bounded queue must shed");
        assert_eq!(rs.admitted + rs.shed, rs.offered, "{rs:?}");
        assert_eq!(rs.goodput + rs.timed_out + rs.in_flight_at_end, rs.admitted);
        assert_eq!(rs.timed_out, 0, "no retry policy, nothing can time out");
        // In-flight can never exceed the admission capacity.
        assert!(rs.in_flight_at_end <= 6, "{rs:?}");
    }

    #[test]
    fn hedged_requests_win_and_cancel_losers() {
        use crate::resilience::ResilienceConfig;
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        // Hedge aggressively (deadline well below the mean) on a 4-server
        // cluster: plenty of duplicates, and with the Web workload's heavy
        // tail some of them must beat their stragglers.
        let config = quick_config()
            .with_servers(4)
            .with_utilization(0.3)
            .with_resilience(ResilienceConfig::new().with_hedge(service_mean * 0.5))
            .with_metric(MetricKind::HedgeWinRate)
            .with_calibration(200)
            .with_max_events(4_000_000);
        let (sim, now, _) = run(config, 42);
        let summary = sim.summary(now);
        let rs = summary.resilience.expect("resilience mode on");
        assert!(rs.hedges_launched > 100, "{rs:?}");
        assert!(rs.hedge_wins > 0, "some hedges must win: {rs:?}");
        assert!(rs.hedge_wins <= rs.hedges_launched);
        // Every resolved hedged pair cancelled its loser mid-service (ties
        // where the loser completed in the same instant are the exception).
        assert!(rs.hedge_cancelled > 0, "{rs:?}");
        assert_eq!(rs.admitted + rs.shed, rs.offered);
        assert_eq!(rs.goodput + rs.timed_out + rs.in_flight_at_end, rs.admitted);
    }

    #[test]
    fn class_shedding_drops_lowest_class_first() {
        use crate::resilience::ResilienceConfig;
        // Class 1 is shed at depth 2; class 0 effectively never. Under 90%
        // load the queue regularly sits at depth >= 2.
        let config = quick_config()
            .with_utilization(0.9)
            .with_resilience(
                ResilienceConfig::new()
                    .with_classes(2, vec![1.0, 1.0])
                    .with_shedding(vec![1_000_000, 2]),
            )
            .with_max_events(2_000_000);
        let (sim, now, _) = run(config, 43);
        let rs = sim.summary(now).resilience.expect("resilience mode on");
        assert_eq!(rs.per_class.len(), 2);
        let [c0, c1] = [rs.per_class[0], rs.per_class[1]];
        assert!(c0.offered > 100 && c1.offered > 100, "{rs:?}");
        assert_eq!(c0.shed, 0, "class 0's threshold is unreachable: {rs:?}");
        assert!(c1.shed > 0, "class 1 must be shed at depth 2: {rs:?}");
        assert_eq!(c0.offered + c1.offered, rs.offered);
        assert_eq!(c0.shed + c1.shed, rs.shed);
        assert_eq!(c0.goodput + c1.goodput, rs.goodput);
    }

    #[test]
    fn token_bucket_caps_admission_rate() {
        use crate::resilience::ResilienceConfig;
        // The config rescales the interarrival for the target utilization,
        // so measure the offered rate from the finished config. Refill at
        // half that rate: about half the arrivals drain the burst and the
        // rest are shed.
        let base = quick_config();
        let rate = 0.5 / base.workload().interarrival().mean();
        let config = base
            .with_resilience(
                ResilienceConfig::new()
                    .with_admission(AdmissionPolicy::TokenBucket { rate, burst: 5.0 }),
            )
            .with_metric(MetricKind::ShedRate)
            .with_calibration(200)
            .with_max_events(2_000_000);
        let (sim, now, _) = run(config, 44);
        let rs = sim.summary(now).resilience.expect("resilience mode on");
        assert_eq!(rs.admitted + rs.shed, rs.offered);
        let shed_fraction = rs.shed as f64 / rs.offered as f64;
        assert!(
            (0.3..0.7).contains(&shed_fraction),
            "token bucket at half rate should shed about half, got {shed_fraction}"
        );
    }

    #[test]
    fn slo_attainment_is_tracked_per_completion() {
        use crate::resilience::ResilienceConfig;
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        let config = quick_config()
            .with_resilience(ResilienceConfig::new().with_slo_deadline(service_mean * 2.0))
            .with_metric(MetricKind::SloAttainment)
            .with_calibration(200)
            .with_max_events(2_000_000);
        let (sim, now, _) = run(config, 45);
        let rs = sim.summary(now).resilience.expect("resilience mode on");
        assert!(rs.goodput > 100);
        assert!(rs.slo_met > 0 && rs.slo_met <= rs.goodput, "{rs:?}");
        let slo = sim.stats().metric_by_name("slo_attainment").unwrap();
        assert_eq!(slo.total_observed(), rs.goodput);
    }

    #[test]
    fn resilience_mode_is_deterministic_given_seed() {
        use crate::resilience::ResilienceConfig;
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        let make = || {
            quick_config()
                .with_servers(2)
                .with_faults(FaultProcess::exponential(15.0, 1.5).unwrap())
                .with_retry(RetryPolicy::new(service_mean * 20.0))
                .with_resilience(
                    ResilienceConfig::new()
                        .with_admission(AdmissionPolicy::BoundedQueue { capacity: 32 })
                        .with_classes(2, vec![3.0, 1.0])
                        .with_shedding(vec![32, 8])
                        .with_hedge(service_mean * 2.0)
                        .with_ramp(5.0, 10.0, 2.0)
                        .with_slo_deadline(service_mean * 4.0),
                )
                .with_max_events(2_000_000)
        };
        let (a, now_a, ev_a) = run(make(), 46);
        let (b, now_b, ev_b) = run(make(), 46);
        assert_eq!(now_a, now_b);
        assert_eq!(ev_a, ev_b);
        assert_eq!(a.summary(now_a).resilience, b.summary(now_b).resilience);
        assert_eq!(a.summary(now_a).faults, b.summary(now_b).faults);
    }

    #[test]
    fn per_server_mode_strands_requests_while_home_is_down() {
        // One server, frequent failures, no retry: arrivals during downtime
        // must strand and then complete after the repair.
        let config = quick_config()
            .with_faults(FaultProcess::exponential(5.0, 1.0).unwrap())
            .with_metric(MetricKind::Availability)
            .with_calibration(200);
        let (sim, now, _) = run(config, 24);
        let summary = sim.summary(now);
        let fs = summary.faults.expect("fault mode on");
        assert!(fs.server_failures > 0);
        assert!(fs.goodput > 0);
        assert_eq!(fs.timed_out, 0, "no retry policy, nothing can time out");
        assert_eq!(fs.goodput + fs.in_flight_at_end, fs.admitted);
    }
}
