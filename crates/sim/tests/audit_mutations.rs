//! Mutation tests for the runtime invariant auditor.
//!
//! Each test arms one deliberately seeded bug (`ClusterSim::seed_bug`) and
//! proves the auditor *catches* it — stopping the run with the right
//! violation instead of hanging, panicking, or silently converging on
//! corrupt accounting. A clean control run proves the same auditor stays
//! quiet on a healthy simulation, and a bit-identity check proves paranoid
//! mode never perturbs the estimates it vets.

use bighouse_des::{Calendar, Engine};
use bighouse_dists::Distribution;
use bighouse_sim::{
    run_serial, AuditConfig, AuditReport, AuditViolation, ClusterSim, ExperimentConfig, SeededBug,
    TerminationReason,
};
use bighouse_workloads::{StandardWorkload, Workload};

fn base_config() -> ExperimentConfig {
    ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_utilization(0.5)
        .with_target_accuracy(0.2)
        .with_warmup(50)
        .with_calibration(500)
}

/// Runs a simulation with `bug` armed and the auditor on, exactly the way
/// the serial runner drives an audited run, and returns the audit report.
fn audited_run_with_bug(bug: SeededBug, audit: AuditConfig) -> AuditReport {
    let config = base_config().with_audit(audit.clone());
    let mut sim = ClusterSim::new(config, 7).unwrap();
    sim.seed_bug(bug);
    let mut cal = Calendar::new();
    sim.prime(&mut cal);
    let mut engine = Engine::from_parts(sim, cal);
    let mut guard = audit.progress_guard();
    let run = engine.run_guarded(500_000, &mut guard);
    assert!(
        run.stopped_by_guard || run.stopped_by_simulation,
        "a seeded bug must stop the run before the event cap ({} events fired)",
        run.events_fired
    );
    let now = engine.now();
    let mut sim = engine.into_simulation();
    if let Some(violation) = guard.violation() {
        sim.record_progress_violation(violation);
    }
    sim.finalize_audit(now);
    sim.take_audit().expect("auditing was enabled")
}

#[test]
fn dropped_completion_is_caught_by_the_cross_check() {
    // A lost completion leaves the server's own books balanced — only the
    // auditor's independent completion count can see the drift.
    let report = audited_run_with_bug(SeededBug::DropCompletion, AuditConfig::default());
    assert!(!report.passed(), "the drop must not go unnoticed");
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            AuditViolation::CompletionMismatch { server_completed, observed }
                if server_completed != observed
        )),
        "expected a completion mismatch, got: {:?}",
        report.violations
    );
    assert!(!report.livelocked());
}

#[test]
fn nan_observation_trips_the_tripwire_without_panicking() {
    // The seeded NaN must be intercepted before it reaches an estimator
    // (StatsCollection::record panics on NaN — reaching it fails the test
    // by panic) and must surface as a typed violation.
    let report = audited_run_with_bug(SeededBug::NanObservation, AuditConfig::default());
    assert!(!report.passed());
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            AuditViolation::NonFiniteObservation { metric, value }
                if metric == "response_time" && value == "NaN"
        )),
        "expected a NaN tripwire hit, got: {:?}",
        report.violations
    );
}

#[test]
fn zero_advance_livelock_is_broken_not_hung() {
    // The seeded livelock reschedules an event at the current timestamp on
    // every dispatch: simulated time stops advancing while events keep
    // firing. The circuit breaker must terminate the run (this test
    // completing at all is the no-hang assertion).
    let audit = AuditConfig {
        stall_limit_events: 2_000, // tight limit: fail fast in tests
        ..AuditConfig::default()
    };
    let report = audited_run_with_bug(SeededBug::Livelock, audit);
    assert!(!report.passed());
    assert!(
        report.livelocked(),
        "expected a livelock violation, got: {:?}",
        report.violations
    );
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, AuditViolation::Livelock { events } if *events >= 2_000)));
}

#[test]
fn double_hedge_completion_is_caught_by_the_request_ledger() {
    // The seeded bug retires the first hedged primary completion twice:
    // once directly (without clearing the hedge pair) and once again when
    // the live hedge finishes. Only the tracked-request ledger can see the
    // extra retirement — goodput outruns admissions.
    use bighouse_sim::ResilienceConfig;
    let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
    let config = base_config()
        .with_servers(4)
        .with_resilience(
            // An aggressive deadline so hedge pairs form early and often.
            ResilienceConfig::new().with_hedge(0.5 * service_mean),
        )
        .with_audit(AuditConfig::default());
    let mut sim = ClusterSim::new(config, 7).unwrap();
    sim.seed_bug(SeededBug::DoubleHedgeCompletion);
    let mut cal = Calendar::new();
    sim.prime(&mut cal);
    let mut engine = Engine::from_parts(sim, cal);
    let audit = AuditConfig::default();
    let mut guard = audit.progress_guard();
    let run = engine.run_guarded(500_000, &mut guard);
    assert!(
        run.stopped_by_guard || run.stopped_by_simulation,
        "the double completion must stop the run before the event cap \
         ({} events fired)",
        run.events_fired
    );
    let now = engine.now();
    let mut sim = engine.into_simulation();
    if let Some(violation) = guard.violation() {
        sim.record_progress_violation(violation);
    }
    sim.finalize_audit(now);
    let report = sim.take_audit().expect("auditing was enabled");
    assert!(
        !report.passed(),
        "the double completion must not go unnoticed"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::RequestLedger { .. })),
        "expected a request-ledger imbalance, got: {:?}",
        report.violations
    );
}

#[test]
fn clean_run_passes_the_same_auditor() {
    // The control: the exact checks that catch the seeded bugs stay quiet
    // on a healthy run, end to end through the serial runner.
    let config = base_config().with_audit(AuditConfig::default());
    let report = run_serial(&config, 7).unwrap();
    assert!(report.converged);
    assert_eq!(report.termination, TerminationReason::Converged);
    let audit = report.audit.expect("auditing was enabled");
    assert!(audit.passed(), "false positives: {:?}", audit.violations);
    assert!(audit.checks_run > 0, "the auditor must actually have swept");
    assert!(audit.observations_checked > 0);
}

#[test]
fn zombie_work_passes_the_completion_cross_check() {
    // Abandon-on-timeout clients leave zombie attempts completing on the
    // servers after the request ledger has already moved on. The
    // auditor's independent completion count must still reconcile with
    // the server books — a missed zombie would surface as a
    // CompletionMismatch.
    use bighouse_faults::RetryPolicy;
    let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
    // Subcritical zombie load (0.25 x 2 attempts < 1): the run converges
    // instead of collapsing, but the heavy service tail still drives
    // plenty of attempts past the timeout.
    let config = base_config()
        .with_utilization(0.25)
        .with_retry(
            RetryPolicy::new(service_mean * 0.5)
                .with_max_retries(1)
                .with_cancel_on_timeout(false),
        )
        .with_max_events(1_000_000)
        .with_audit(AuditConfig::default());
    let report = run_serial(&config, 7).unwrap();
    let fs = report.cluster.faults.expect("retry implies fault mode");
    assert!(
        fs.timed_out > 20,
        "the scenario must produce zombies: {fs:?}"
    );
    let audit = report.audit.expect("auditing was enabled");
    assert!(audit.passed(), "false positives: {:?}", audit.violations);
    assert!(audit.checks_run > 0);
}

#[test]
fn paranoid_mode_is_bit_identical_to_plain_runs() {
    // Auditing must be purely observational: same seed, same trajectory,
    // same estimates to the last f64 bit (JSON round-trips f64 losslessly,
    // so string equality is bit equality).
    let plain = run_serial(&base_config(), 11).unwrap();
    let audited = run_serial(&base_config().with_audit(AuditConfig::default()), 11).unwrap();
    assert_eq!(plain.events_fired, audited.events_fired);
    assert_eq!(
        plain.simulated_seconds.to_bits(),
        audited.simulated_seconds.to_bits()
    );
    assert_eq!(
        serde_json::to_string(&plain.estimates).unwrap(),
        serde_json::to_string(&audited.estimates).unwrap(),
        "paranoid mode perturbed the estimates"
    );
}
