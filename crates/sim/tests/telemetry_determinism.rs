//! Telemetry bit-identity: instrumentation must be a pure observer.
//!
//! Two contracts, both load-bearing for CI:
//!
//! 1. A fixed-seed run with telemetry ON produces **bit-identical**
//!    estimates (and event counts, and simulated time) to the same run
//!    with telemetry OFF — the same guarantee the runtime auditor proved
//!    in the previous PR, extended to the instrumentation layer.
//! 2. Two instrumented runs of the same seed produce **identical
//!    telemetry snapshots** once wall-clock values are stripped — the
//!    counters and histograms are themselves deterministic facts.
//!
//! Comparisons use struct equality and `f64::to_bits`, never formatted
//! strings, so nothing here depends on a JSON library's float rendering.

use bighouse_faults::{FaultProcess, RetryPolicy};
use bighouse_sim::{
    run_resumable, run_serial, ArrivalMode, ExperimentConfig, FastPathMode, MetricKind, RunOptions,
};
use bighouse_telemetry::TelemetrySnapshot;
use bighouse_workloads::{StandardWorkload, Workload};

fn quick_config() -> ExperimentConfig {
    ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_utilization(0.5)
        .with_target_accuracy(0.2)
        .with_warmup(50)
        .with_calibration(500)
}

/// Bit-exact estimate comparison without going through serialization.
fn assert_estimates_bit_identical(
    a: &bighouse_sim::SimulationReport,
    b: &bighouse_sim::SimulationReport,
    context: &str,
) {
    assert_eq!(a.events_fired, b.events_fired, "{context}: events differ");
    assert_eq!(
        a.simulated_seconds.to_bits(),
        b.simulated_seconds.to_bits(),
        "{context}: simulated time differs"
    );
    assert_eq!(
        a.estimates.len(),
        b.estimates.len(),
        "{context}: metric count differs"
    );
    for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(ea.name, eb.name, "{context}");
        assert_eq!(
            ea.mean.to_bits(),
            eb.mean.to_bits(),
            "{context}: {}",
            ea.name
        );
        assert_eq!(
            ea.std_dev.to_bits(),
            eb.std_dev.to_bits(),
            "{context}: {}",
            ea.name
        );
        assert_eq!(
            ea.mean_half_width.to_bits(),
            eb.mean_half_width.to_bits(),
            "{context}: {}",
            ea.name
        );
        assert_eq!(ea.samples_kept, eb.samples_kept, "{context}: {}", ea.name);
        assert_eq!(ea.lag, eb.lag, "{context}: {}", ea.name);
        assert_eq!(
            ea.quantiles.len(),
            eb.quantiles.len(),
            "{context}: {}",
            ea.name
        );
        for (qa, qb) in ea.quantiles.iter().zip(&eb.quantiles) {
            assert_eq!(
                qa.value.to_bits(),
                qb.value.to_bits(),
                "{context}: {}",
                ea.name
            );
        }
    }
}

/// The deterministic projection of a snapshot: wall values stripped, phase
/// wall-stamps zeroed. Everything that remains must be a pure function of
/// the configuration and seed.
fn deterministic(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    snap.without_wall_times()
}

#[test]
fn telemetry_on_matches_telemetry_off_bit_for_bit() {
    let configs = [
        quick_config(),
        quick_config()
            .with_servers(4)
            .with_arrival_mode(ArrivalMode::LoadBalanced(
                bighouse_models::BalancerPolicy::JoinShortestQueue,
            )),
        quick_config()
            .with_servers(2)
            .with_faults(FaultProcess::exponential(20.0, 2.0).unwrap())
            .with_retry(RetryPolicy::new(1.0))
            .with_metric(MetricKind::Availability)
            .with_calibration(200),
    ];
    for (i, config) in configs.iter().enumerate() {
        let seed = 70 + i as u64;
        let plain = run_serial(config, seed).unwrap();
        let instrumented = run_serial(&config.clone().with_telemetry(true), seed).unwrap();
        assert_estimates_bit_identical(&plain, &instrumented, &format!("config {i}"));
        assert!(plain.runtime.telemetry.is_none());
        let snap = instrumented
            .runtime
            .telemetry
            .as_ref()
            .expect("instrumented run must carry telemetry");
        assert_eq!(
            snap.counters["des.events_fired"], instrumented.events_fired,
            "config {i}: calendar counter disagrees with the engine"
        );
        assert!(snap.counters["stats.samples_recorded"] > 0, "config {i}");
    }
}

#[test]
fn two_instrumented_runs_produce_identical_snapshots() {
    let config = quick_config().with_telemetry(true);
    let a = run_serial(&config, 81).unwrap();
    let b = run_serial(&config, 81).unwrap();
    let snap_a = a.runtime.telemetry.expect("telemetry on");
    let snap_b = b.runtime.telemetry.expect("telemetry on");
    // Deterministic sections agree exactly: counters, gauges, histogram
    // bin counts, and the phase-transition log (minus wall stamps).
    assert_eq!(deterministic(&snap_a), deterministic(&snap_b));
    // And the non-deterministic part is really confined to `wall`: both
    // snapshots carry it, it just may differ.
    assert!(snap_a.wall.contains_key("wall_seconds"));
    assert!(snap_b.wall.contains_key("wall_seconds"));
}

#[test]
fn snapshot_carries_every_layer() {
    let config = quick_config()
        .with_servers(2)
        .with_telemetry(true)
        .with_faults(FaultProcess::exponential(20.0, 2.0).unwrap())
        .with_metric(MetricKind::Availability)
        .with_calibration(200);
    let report = run_serial(&config, 82).unwrap();
    let snap = report.runtime.telemetry.expect("telemetry on");
    // des layer
    assert!(snap.counters["des.events_scheduled"] >= snap.counters["des.events_fired"]);
    assert!(snap.counters["des.sift_steps"] > 0);
    assert!(snap.gauges["des.calendar_depth_high_water"] >= 1.0);
    // stats layer
    assert!(snap.counters["stats.response_time.samples_kept"] > 0);
    assert!(snap.gauges.contains_key("stats.response_time.lag"));
    assert!(!snap.phases.is_empty(), "phase transitions must be logged");
    assert!(snap
        .phases
        .iter()
        .any(|p| p.metric == "response_time" && p.from == "warm-up"));
    // sim layer
    assert!(snap.histograms["sim.queue_depth"].count > 0);
    assert!(snap.histograms["sim.server_utilization"].count > 0);
    assert!(snap.counters["sim.server_failures"] > 0);
    // wall quarantine
    assert!(snap.wall.contains_key("des.events_per_second"));
}

#[test]
fn resumable_telemetry_spans_epochs_and_stays_observational() {
    let config = quick_config();
    let opts = RunOptions {
        epoch_events: 2_000,
        ..RunOptions::default()
    };
    let plain = run_resumable(&config, 83, &opts).unwrap();
    let instrumented = run_resumable(&config.clone().with_telemetry(true), 83, &opts).unwrap();
    assert_estimates_bit_identical(&plain, &instrumented, "resumable");
    let snap = instrumented.runtime.telemetry.expect("telemetry on");
    assert!(
        snap.counters["sim.epochs"] > 1,
        "run must span several epochs"
    );
    assert_eq!(snap.counters["des.events_fired"], instrumented.events_fired);
    // Epoch stitching preserves snapshot determinism too.
    let again = run_resumable(&config.clone().with_telemetry(true), 83, &opts).unwrap();
    assert_eq!(
        deterministic(&snap),
        deterministic(&again.runtime.telemetry.expect("telemetry on"))
    );
}

#[test]
fn fastpath_counters_are_deterministic_and_sit_outside_the_wall_quarantine() {
    // The fast-path counters are facts about engine selection and batch
    // sizes — pure functions of the configuration and seed — so they
    // belong to the deterministic split, not the wall quarantine.
    let config = quick_config().with_telemetry(true);
    let a = run_serial(&config, 85).unwrap();
    let b = run_serial(&config, 85).unwrap();
    let snap_a = a.runtime.telemetry.expect("telemetry on");
    let snap_b = b.runtime.telemetry.expect("telemetry on");
    for key in ["fastpath.entries", "fastpath.bailouts", "fastpath.batched_departures"] {
        assert!(snap_a.counters.contains_key(key), "{key} must be a counter");
        assert!(!snap_a.wall.contains_key(key), "{key} must not be wall-quarantined");
        assert_eq!(snap_a.counters[key], snap_b.counters[key], "{key}");
    }
    // quick_config is an eligible plain FCFS scenario.
    assert_eq!(snap_a.counters["fastpath.entries"], 1);
    assert_eq!(snap_a.counters["fastpath.bailouts"], 0);
    assert!(snap_a.counters["fastpath.batched_departures"] > 0);
}

#[test]
fn ineligible_snapshots_are_bit_identical_across_fastpath_modes() {
    // An ineligible scenario falls back to the calendar under every mode,
    // so `force` and `off` must produce the same telemetry down to the
    // bailout counter — the differential CI job relies on this when it
    // sweeps specs whose scenarios are not fast-path eligible.
    let config = quick_config()
        .with_servers(2)
        .with_telemetry(true)
        .with_faults(FaultProcess::exponential(20.0, 2.0).unwrap())
        .with_metric(MetricKind::Availability)
        .with_calibration(200);
    let forced = run_serial(&config.clone().with_fastpath(FastPathMode::Force), 86).unwrap();
    let off = run_serial(&config.clone().with_fastpath(FastPathMode::Off), 86).unwrap();
    assert_estimates_bit_identical(&forced, &off, "ineligible force-vs-off");
    let snap_forced = forced.runtime.telemetry.expect("telemetry on");
    let snap_off = off.runtime.telemetry.expect("telemetry on");
    assert_eq!(
        snap_forced.counters["fastpath.entries"], 0,
        "ineligible scenario must not enter the fast path even under force"
    );
    assert_eq!(snap_forced.counters["fastpath.bailouts"], 1);
    // The bailout is noted regardless of mode, so the two snapshots are
    // the *same* deterministic object — same calendar work, same stats,
    // same mode-selection counters — and the comparison needs no carve-out.
    assert_eq!(snap_off.counters["fastpath.bailouts"], 1);
    assert_eq!(deterministic(&snap_forced), deterministic(&snap_off));
}

#[test]
fn checkpointed_telemetry_counts_writes() {
    let dir = std::env::temp_dir().join(format!("bighouse-telemetry-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = quick_config().with_telemetry(true);
    let opts = RunOptions {
        epoch_events: 10_000,
        checkpoint: Some(bighouse_sim::CheckpointConfig::new(&dir)),
        ..RunOptions::default()
    };
    let report = run_resumable(&config, 84, &opts).unwrap();
    let snap = report.runtime.telemetry.expect("telemetry on");
    assert!(snap.counters["sim.checkpoint_writes"] >= 1);
    assert!(snap.wall.contains_key("sim.checkpoint_write_seconds_total"));
    let _ = std::fs::remove_dir_all(&dir);
}
