//! Differential fast-path-vs-DES equivalence: the analytic fast path must
//! be **bit-identical** to the calendar engine, not statistically close.
//!
//! Three contracts, all load-bearing for CI:
//!
//! 1. For every eligible G/G/k FCFS configuration, `fastpath=force` and
//!    `fastpath=off` produce bit-identical estimates, event counts, and
//!    simulated time — the fast engine consumes the same RNG stream in
//!    the same order, so every per-request departure time matches.
//! 2. Ineligible configurations (faults armed, hedging on, auditing on)
//!    never enter the fast path, even under `force`: the telemetry
//!    counters prove the engine selection, and force-vs-off stays
//!    trivially bit-identical because both take the calendar.
//! 3. Fast-path M/M/k estimates agree with the closed forms in
//!    `bighouse-analytic` — the same oracle the calendar engine is
//!    validated against.
//!
//! Comparisons use `f64::to_bits`, never formatted strings.

use bighouse_analytic::mmk;
use bighouse_faults::FaultProcess;
use bighouse_models::BalancerPolicy;
use bighouse_sim::{
    run_resumable, run_serial, ArrivalMode, AuditConfig, ExperimentConfig, FastPathMode,
    MetricKind, ResilienceConfig, RunOptions, SimulationReport,
};
use bighouse_workloads::{StandardWorkload, TaskMoments, Workload};

/// A synthesized G/G/k workload with the given service-time shape
/// (`cv` = σ/mean): 0.3 is nearly deterministic, 1.0 is exponential
/// (M/M/k), 2.5 is heavy-tailed — spanning the service families the
/// moment fitter selects (low-CV Erlang, exponential, hyperexponential).
fn ggk_workload(service_cv: f64) -> Workload {
    let mean = 0.02;
    Workload::synthesize(
        "ggk",
        TaskMoments::new(0.002, 0.002),
        TaskMoments::new(mean, service_cv * mean),
        2012,
    )
    .expect("moment pairs are fittable")
}

fn eligible_config(service_cv: f64, utilization: f64, servers: usize) -> ExperimentConfig {
    ExperimentConfig::new(ggk_workload(service_cv).at_utilization(utilization, 4))
        .with_servers(servers)
        .with_target_accuracy(0.05)
        .with_warmup(100)
        .with_calibration(500)
        .with_max_events(400_000)
}

fn run_with_mode(config: &ExperimentConfig, mode: FastPathMode, seed: u64) -> SimulationReport {
    run_serial(&config.clone().with_fastpath(mode), seed).expect("config is valid")
}

/// Bit-exact comparison of everything derived from per-request departure
/// times: the estimates (means, CI half-widths, quantiles), the final
/// simulated clock, the event count, and the job/energy accounting.
fn assert_reports_bit_identical(a: &SimulationReport, b: &SimulationReport, context: &str) {
    assert_eq!(a.events_fired, b.events_fired, "{context}: events differ");
    assert_eq!(
        a.simulated_seconds.to_bits(),
        b.simulated_seconds.to_bits(),
        "{context}: simulated time differs"
    );
    assert_eq!(a.converged, b.converged, "{context}: convergence differs");
    assert_eq!(
        a.cluster.jobs_completed, b.cluster.jobs_completed,
        "{context}: completion counts differ"
    );
    assert_eq!(
        a.cluster.total_energy_joules.to_bits(),
        b.cluster.total_energy_joules.to_bits(),
        "{context}: energy accounting differs"
    );
    assert_eq!(a.estimates.len(), b.estimates.len(), "{context}");
    for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(ea.name, eb.name, "{context}");
        assert_eq!(ea.mean.to_bits(), eb.mean.to_bits(), "{context}: {}", ea.name);
        assert_eq!(
            ea.std_dev.to_bits(),
            eb.std_dev.to_bits(),
            "{context}: {}",
            ea.name
        );
        assert_eq!(
            ea.mean_half_width.to_bits(),
            eb.mean_half_width.to_bits(),
            "{context}: {}",
            ea.name
        );
        assert_eq!(ea.samples_kept, eb.samples_kept, "{context}: {}", ea.name);
        assert_eq!(ea.lag, eb.lag, "{context}: {}", ea.name);
        for (qa, qb) in ea.quantiles.iter().zip(&eb.quantiles) {
            assert_eq!(
                qa.value.to_bits(),
                qb.value.to_bits(),
                "{context}: {} q{}",
                ea.name,
                qa.q
            );
        }
    }
}

#[test]
fn force_and_off_are_bit_identical_across_ggk_shapes() {
    // Service shape × cluster size × load, per-server and load-balanced:
    // every combination must agree engine-vs-engine down to the last bit.
    let mut case = 0u64;
    for service_cv in [0.3, 1.0, 2.5] {
        for (servers, utilization) in [(1usize, 0.5), (4, 0.7), (8, 0.3)] {
            let configs = [
                eligible_config(service_cv, utilization, servers),
                eligible_config(service_cv, utilization, servers).with_arrival_mode(
                    ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue),
                ),
            ];
            for config in configs {
                case += 1;
                let seed = 9000 + case;
                let fast = run_with_mode(&config, FastPathMode::Force, seed);
                let calendar = run_with_mode(&config, FastPathMode::Off, seed);
                assert_reports_bit_identical(
                    &fast,
                    &calendar,
                    &format!("cv={service_cv} servers={servers} u={utilization} case={case}"),
                );
            }
        }
    }
}

#[test]
fn waiting_time_metric_stays_bit_identical() {
    // The waiting-time observation path has its own conditional record
    // (only positive waits are observed); it must match exactly too.
    let config = eligible_config(1.0, 0.7, 2).with_metric(MetricKind::WaitingTime);
    let fast = run_with_mode(&config, FastPathMode::Force, 77);
    let calendar = run_with_mode(&config, FastPathMode::Off, 77);
    assert_reports_bit_identical(&fast, &calendar, "waiting-time");
}

#[test]
fn auto_mode_matches_both_explicit_modes() {
    let config = eligible_config(1.0, 0.6, 4);
    let auto = run_with_mode(&config, FastPathMode::Auto, 31);
    let forced = run_with_mode(&config, FastPathMode::Force, 31);
    let calendar = run_with_mode(&config, FastPathMode::Off, 31);
    assert_reports_bit_identical(&auto, &forced, "auto-vs-force");
    assert_reports_bit_identical(&auto, &calendar, "auto-vs-off");
}

/// Telemetry proof of engine selection: the fast-path counters record
/// entries on eligible runs and bailouts on ineligible ones.
fn fastpath_counters(config: &ExperimentConfig, seed: u64) -> (u64, u64, u64) {
    let report = run_serial(&config.clone().with_telemetry(true), seed).expect("valid config");
    let snap = report.runtime.telemetry.expect("telemetry on");
    (
        snap.counters["fastpath.entries"],
        snap.counters["fastpath.bailouts"],
        snap.counters["fastpath.batched_departures"],
    )
}

#[test]
fn eligible_run_enters_fast_path_and_batches_departures() {
    let config = eligible_config(1.0, 0.6, 2).with_fastpath(FastPathMode::Force);
    let (entries, bailouts, batched) = fastpath_counters(&config, 5);
    assert_eq!(entries, 1, "eligible forced run must enter the fast path");
    assert_eq!(bailouts, 0);
    assert!(batched > 0, "departures must be batch-recorded");
}

#[test]
fn off_mode_never_enters_even_when_eligible() {
    let config = eligible_config(1.0, 0.6, 2).with_fastpath(FastPathMode::Off);
    let (entries, bailouts, batched) = fastpath_counters(&config, 5);
    assert_eq!(entries, 0, "off must pin the calendar engine");
    assert_eq!(bailouts, 0, "off is a choice, not a bailout");
    assert_eq!(batched, 0);
}

#[test]
fn ineligible_configs_never_enter_fast_path_even_under_force() {
    let faulty = eligible_config(1.0, 0.6, 2)
        .with_faults(FaultProcess::exponential(20.0, 2.0).unwrap())
        .with_metric(MetricKind::Availability)
        .with_fastpath(FastPathMode::Force);
    let hedged = eligible_config(1.0, 0.6, 2)
        .with_resilience(ResilienceConfig::new().with_hedge(0.05))
        .with_fastpath(FastPathMode::Force);
    let audited = eligible_config(1.0, 0.6, 2)
        .with_audit(AuditConfig::default())
        .with_fastpath(FastPathMode::Force);
    for (name, config) in [("faults", faulty), ("hedging", hedged), ("audit", audited)] {
        let (entries, bailouts, batched) = fastpath_counters(&config, 6);
        assert_eq!(entries, 0, "{name}: must not enter the fast path");
        assert_eq!(bailouts, 1, "{name}: the bailout must be counted");
        assert_eq!(batched, 0, "{name}");
    }
}

#[test]
fn fault_arming_falls_back_with_estimates_bit_identical_to_pure_des() {
    // The acceptance scenario: a configuration that would be eligible
    // except for an armed fault process must take the calendar under
    // every mode, and `force` must change nothing about the estimates.
    let config = eligible_config(1.0, 0.7, 4)
        .with_faults(FaultProcess::exponential(30.0, 1.0).unwrap())
        .with_metric(MetricKind::Availability);
    let forced = run_with_mode(&config, FastPathMode::Force, 91);
    let pure_des = run_with_mode(&config, FastPathMode::Off, 91);
    assert_reports_bit_identical(&forced, &pure_des, "fault-fallback");
}

#[test]
fn resumable_epochs_stay_bit_identical_across_modes() {
    // The epoch-structured runner rebuilds an engine per epoch; mode
    // selection must not disturb the restored-statistics trajectory.
    let config = eligible_config(1.0, 0.6, 2);
    let opts = RunOptions {
        epoch_events: 20_000,
        ..RunOptions::default()
    };
    let fast = run_resumable(&config.clone().with_fastpath(FastPathMode::Force), 17, &opts)
        .expect("valid config");
    let calendar = run_resumable(&config.clone().with_fastpath(FastPathMode::Off), 17, &opts)
        .expect("valid config");
    assert_reports_bit_identical(&fast, &calendar, "resumable");
}

#[test]
fn fast_path_mmk_estimates_agree_with_closed_forms() {
    // M/M/4: one server with 4 cores is a single FCFS station with 4
    // parallel service channels. The workload tabulates exponential
    // draws into an empirical inverse CDF, so the simulated mean carries
    // sampling error (±2% target accuracy here — looser targets stop the
    // run too early for an oracle check, since queueing samples are
    // positively correlated and the CI undercovers on short runs) plus
    // the tabulation's modeling error; 10% total headroom against the
    // exact closed form.
    let mean_service = 0.02;
    let utilization = 0.7;
    let cores = 4u32;
    let workload = ggk_workload(1.0).at_utilization(utilization, cores);
    let config = ExperimentConfig::new(workload)
        .with_cores(cores as usize)
        .with_target_accuracy(0.02)
        .with_warmup(500)
        .with_calibration(2_000)
        .with_max_events(8_000_000)
        .with_fastpath(FastPathMode::Force);
    let report = run_serial(&config, 2012).expect("valid config");
    assert!(report.converged, "the oracle comparison needs a converged run");
    let est = report.metric("response_time").expect("metric tracked");

    let mu = 1.0 / mean_service;
    let lambda = utilization * f64::from(cores) * mu;
    let analytic = mmk::mean_response(lambda, mu, cores);
    let rel_err = (est.mean - analytic).abs() / analytic;
    assert!(
        rel_err < 0.10,
        "fast-path M/M/{cores} mean {:.6} vs closed form {analytic:.6} (rel err {:.3})",
        est.mean,
        rel_err
    );
    // And the exact same estimate must come off the calendar engine.
    let calendar = run_serial(&config.clone().with_fastpath(FastPathMode::Off), 2012).unwrap();
    assert_reports_bit_identical(&report, &calendar, "mmk-oracle");
}

#[test]
fn standard_workloads_are_eligible_and_bit_identical() {
    // The Table 1 workloads with plain FCFS service are exactly the
    // segments the fast path exists for.
    for (i, which) in [StandardWorkload::Web, StandardWorkload::Dns]
        .into_iter()
        .enumerate()
    {
        let config = ExperimentConfig::new(Workload::standard(which))
            .with_utilization(0.5)
            .with_target_accuracy(0.1)
            .with_warmup(50)
            .with_calibration(500);
        let seed = 300 + i as u64;
        let fast = run_with_mode(&config, FastPathMode::Force, seed);
        let calendar = run_with_mode(&config, FastPathMode::Off, seed);
        assert_reports_bit_identical(&fast, &calendar, which.name());
    }
}
