//! End-to-end acceptance of the process-isolated slave backend, run
//! WITHOUT the libtest harness (`harness = false` in Cargo.toml): slave
//! children are spawned by re-executing this very binary with the
//! `__slave` argument, and libtest's stdout chatter would corrupt the
//! length-prefixed frame stream the protocol runs over.
//!
//! The headline claims under test, straight from the design contract:
//!
//! 1. A clean process-backend run is bit-identical to the in-process
//!    lockstep backend at the same seed.
//! 2. A slave SIGKILLed mid-epoch — and, separately, one that calls
//!    `std::process::abort()` (which `catch_unwind` cannot contain) — is
//!    resurrected from its epoch checkpoint and the merged estimates are
//!    still bit-identical to the undisturbed run.
//! 3. No zombie or orphan slave children survive any of it.

use bighouse_sim::{
    ExperimentConfig, ExecBackend, ParallelRunner, ProcChaos, ProcSlaveConfig,
};
use bighouse_workloads::{StandardWorkload, Workload};

const SEED: u64 = 20_120_613;
const EPOCH: u64 = 50_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Slave mode: this process was spawned by a test below. It must not
    // print anything to stdout except protocol frames.
    if args.first().map(String::as_str) == Some("__slave") {
        std::process::exit(i32::from(bighouse_sim::slave_main()));
    }

    let tests: &[(&str, fn())] = &[
        (
            "clean_process_run_is_bit_identical_to_lockstep",
            clean_process_run_is_bit_identical_to_lockstep,
        ),
        (
            "sigkilled_slave_is_resurrected_bit_identically",
            sigkilled_slave_is_resurrected_bit_identically,
        ),
        (
            "aborting_slave_is_resurrected_bit_identically",
            aborting_slave_is_resurrected_bit_identically,
        ),
        ("no_zombie_or_orphan_children_remain", no_zombie_or_orphan_children_remain),
    ];
    let mut failed = 0usize;
    for (name, test) in tests {
        print!("test {name} ... ");
        match std::panic::catch_unwind(test) {
            Ok(()) => println!("ok"),
            Err(_) => {
                println!("FAILED");
                failed += 1;
            }
        }
    }
    println!(
        "\ntest result: {}. {} passed; {failed} failed",
        if failed == 0 { "ok" } else { "FAILED" },
        tests.len() - failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

// Accuracy tight enough that no slave can converge inside its first
// epoch: the SIGKILL chaos arms on the victim's first epoch checkpoint
// and fires on its next heartbeat, so the run must still be in flight.
fn config() -> ExperimentConfig {
    ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_utilization(0.5)
        .with_target_accuracy(0.05)
        .with_warmup(50)
        .with_calibration(500)
        .with_max_events(50_000_000)
}

fn estimates(outcome: &bighouse_sim::ParallelOutcome) -> String {
    serde_json::to_string(&outcome.estimates).expect("estimates serialize")
}

fn lockstep_reference() -> bighouse_sim::ParallelOutcome {
    ParallelRunner::new(config(), 2)
        .with_backend(ExecBackend::ThreadLockstep)
        .with_slave_epoch(EPOCH)
        .run(SEED)
        .expect("lockstep reference run")
}

fn process_runner() -> ParallelRunner {
    ParallelRunner::new(config(), 2)
        .with_backend(ExecBackend::Processes(ProcSlaveConfig::default()))
        .with_slave_epoch(EPOCH)
}

fn clean_process_run_is_bit_identical_to_lockstep() {
    let reference = lockstep_reference();
    let proc = process_runner().run(SEED).expect("process-backend run");
    assert!(proc.converged, "clean run converges");
    assert_eq!(proc.resurrections, 0, "no chaos, no respawns");
    assert_eq!(
        estimates(&reference),
        estimates(&proc),
        "process backend must reproduce the lockstep trajectory exactly"
    );
}

fn sigkilled_slave_is_resurrected_bit_identically() {
    let reference = lockstep_reference();
    let chaotic = process_runner()
        .with_proc_chaos(ProcChaos::KillMidEpoch { slave: 1 })
        .run(SEED)
        .expect("chaos run survives a SIGKILL");
    assert!(chaotic.resurrections >= 1, "the SIGKILL chaos never fired");
    assert!(chaotic.dead_slaves.is_empty(), "the victim must come back");
    assert_eq!(
        estimates(&reference),
        estimates(&chaotic),
        "a SIGKILLed-mid-epoch slave must replay to the identical estimates"
    );
}

fn aborting_slave_is_resurrected_bit_identically() {
    // `std::process::abort()` raises SIGABRT with no unwinding: the
    // in-thread backends fundamentally cannot contain it. The process
    // backend must treat it exactly like any other child death.
    let reference = lockstep_reference();
    let chaotic = process_runner()
        .with_proc_chaos(ProcChaos::AbortAfterFirstEpoch { slave: 0 })
        .run(SEED)
        .expect("chaos run survives an abort");
    assert!(chaotic.resurrections >= 1, "the abort chaos never fired");
    assert!(chaotic.dead_slaves.is_empty(), "the victim must come back");
    assert_eq!(
        estimates(&reference),
        estimates(&chaotic),
        "an aborting slave must replay to the identical estimates"
    );
}

/// Scans `/proc` for leftover slave children of this process: any process
/// whose parent is us (zombies included — their state shows as `Z`) or
/// whose environment carries our slave marker. Linux-only; a no-op pass
/// elsewhere.
fn no_zombie_or_orphan_children_remain() {
    if !cfg!(target_os = "linux") {
        return;
    }
    // Give the reaper a beat: the runs above have returned, which already
    // implies reaping, but the assertion below is stronger than the API
    // contract and deserves a settled /proc.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let me = std::process::id();
    let marker = format!("BIGHOUSE_PROCSLAVE={me}");
    let mut leftovers = Vec::new();
    for entry in std::fs::read_dir("/proc").expect("/proc readable").flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        if pid == me {
            continue;
        }
        // stat: "pid (comm) state ppid ..." — comm may contain spaces,
        // so parse from the last ')'.
        let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).unwrap_or_default();
        let after = stat.rsplit_once(')').map(|(_, rest)| rest).unwrap_or("");
        let mut fields = after.split_whitespace();
        let state = fields.next().unwrap_or("");
        let ppid: u32 = fields.next().and_then(|p| p.parse().ok()).unwrap_or(0);
        let is_child = ppid == me;
        let is_zombie_child = is_child && state == "Z";
        let has_marker = std::fs::read(format!("/proc/{pid}/environ"))
            .map(|env| env.split(|b| *b == 0).any(|kv| kv == marker.as_bytes()))
            .unwrap_or(false);
        if is_zombie_child || has_marker {
            leftovers.push((pid, state.to_string(), is_child));
        }
    }
    assert!(
        leftovers.is_empty(),
        "slave children leaked past the supervisor: {leftovers:?}"
    );
}
