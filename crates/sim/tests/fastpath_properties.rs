//! Property-based fast-path equivalence: for *randomized* G/G/k FCFS
//! configurations — exponential-ish, near-deterministic, and heavy-tailed
//! service shapes, varying core counts, server counts, and loads — the
//! analytic fast path must produce estimates bit-identical to the full
//! event calendar, and ineligible configurations must never enter it.
//!
//! The fixed-matrix companion lives in `fastpath_equivalence.rs`; this
//! file explores the configuration space proptest-style. Case counts are
//! kept low because every case is two full (event-capped) runs.

use proptest::prelude::*;

use bighouse_faults::FaultProcess;
use bighouse_sim::{
    run_serial, ExperimentConfig, FastPathMode, MetricKind, ResilienceConfig, SimulationReport,
};
use bighouse_workloads::{TaskMoments, Workload};

/// A synthesized G/G/k workload: `service_cv` sweeps the moment fitter
/// across its low-CV (Erlang, near-deterministic), exponential, and
/// hyperexponential (Pareto-ish heavy-tail) families.
fn ggk_config(
    service_cv: f64,
    utilization: f64,
    servers: usize,
    cores: usize,
) -> ExperimentConfig {
    let mean = 0.02;
    let workload = Workload::synthesize(
        "ggk-prop",
        TaskMoments::new(0.002, 0.002),
        TaskMoments::new(mean, service_cv * mean),
        2012,
    )
    .expect("moment pairs are fittable");
    ExperimentConfig::new(workload.at_utilization(utilization, cores as u32))
        .with_servers(servers)
        .with_cores(cores)
        .with_target_accuracy(0.2)
        .with_warmup(20)
        .with_calibration(200)
        .with_max_events(150_000)
}

fn run_with_mode(config: &ExperimentConfig, mode: FastPathMode, seed: u64) -> SimulationReport {
    run_serial(&config.clone().with_fastpath(mode), seed).expect("config is valid")
}

fn fastpath_counters(config: &ExperimentConfig, seed: u64) -> (u64, u64) {
    let report = run_serial(&config.clone().with_telemetry(true), seed).expect("valid config");
    let snap = report.runtime.telemetry.expect("telemetry on");
    (
        snap.counters["fastpath.entries"],
        snap.counters["fastpath.bailouts"],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed, load, cluster shape, and service-time family, the
    /// fast path and the calendar engine agree bit-for-bit: identical
    /// event counts, identical simulated time (hence identical
    /// per-request departure times — the clock advances only through
    /// them), and identical final estimates.
    #[test]
    fn fast_and_calendar_estimates_are_bit_identical(
        seed in any::<u64>(),
        service_cv in 0.2f64..3.0,
        utilization in 0.1f64..0.85,
        servers in 1usize..4,
        cores in 1usize..6,
    ) {
        let config = ggk_config(service_cv, utilization, servers, cores);
        let fast = run_with_mode(&config, FastPathMode::Force, seed);
        let calendar = run_with_mode(&config, FastPathMode::Off, seed);
        prop_assert_eq!(fast.events_fired, calendar.events_fired);
        prop_assert_eq!(
            fast.simulated_seconds.to_bits(),
            calendar.simulated_seconds.to_bits()
        );
        prop_assert_eq!(fast.cluster.jobs_completed, calendar.cluster.jobs_completed);
        prop_assert_eq!(
            fast.cluster.total_energy_joules.to_bits(),
            calendar.cluster.total_energy_joules.to_bits()
        );
        prop_assert_eq!(fast.estimates, calendar.estimates);
    }

    /// Ineligible configurations never enter the fast path, no matter the
    /// seed or load: a run with faults armed or hedging on must bail out
    /// to the calendar even under `force`, and the differential estimates
    /// stay trivially identical because both modes take the same engine.
    #[test]
    fn ineligible_configs_never_enter_fast_path(
        seed in any::<u64>(),
        utilization in 0.2f64..0.8,
        hedged in any::<bool>(),
    ) {
        let base = ggk_config(1.0, utilization, 2, 4);
        let config = if hedged {
            base.with_resilience(ResilienceConfig::new().with_hedge(0.05))
        } else {
            base.with_faults(FaultProcess::exponential(20.0, 2.0).unwrap())
                .with_metric(MetricKind::Availability)
        }
        .with_fastpath(FastPathMode::Force);
        let (entries, bailouts) = fastpath_counters(&config, seed);
        prop_assert_eq!(entries, 0, "ineligible config entered the fast path");
        prop_assert_eq!(bailouts, 1);
        let forced = run_with_mode(&config, FastPathMode::Force, seed);
        let calendar = run_with_mode(&config, FastPathMode::Off, seed);
        prop_assert_eq!(forced.events_fired, calendar.events_fired);
        prop_assert_eq!(forced.estimates, calendar.estimates);
    }
}
