//! Property-based tests for the simulation orchestration layer.

use proptest::prelude::*;

use bighouse_sim::{run_serial, ExperimentConfig};
use bighouse_workloads::{StandardWorkload, Workload};

fn capped_config(utilization: f64, servers: usize, cores: usize) -> ExperimentConfig {
    ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_servers(servers)
        .with_cores(cores)
        .with_utilization(utilization)
        .with_target_accuracy(0.2)
        .with_warmup(20)
        .with_calibration(200)
        .with_max_events(200_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and any reasonable configuration, a (possibly
    /// event-capped) run yields internally consistent results: response
    /// times above the service floor, utilization in range, counters sane.
    #[test]
    fn reports_are_internally_consistent(
        seed in any::<u64>(),
        utilization in 0.1f64..0.8,
        servers in 1usize..4,
        cores in 1usize..8,
    ) {
        let report = run_serial(&capped_config(utilization, servers, cores), seed).unwrap();
        prop_assert!(report.events_fired > 0);
        prop_assert!(report.simulated_seconds > 0.0);
        prop_assert!(report.cluster.mean_utilization >= 0.0);
        prop_assert!(report.cluster.mean_utilization <= 1.0 + 1e-9);
        prop_assert!(report.cluster.jobs_completed > 0);
        if let Some(est) = report.metric("response_time") {
            prop_assert!(est.mean > 0.0);
            for q in &est.quantiles {
                prop_assert!(q.value >= 0.0);
            }
        }
    }

    /// Determinism holds for arbitrary seeds and configurations.
    #[test]
    fn determinism_for_any_seed(seed in any::<u64>(), utilization in 0.1f64..0.8) {
        let config = capped_config(utilization, 2, 4);
        let a = run_serial(&config, seed).unwrap();
        let b = run_serial(&config, seed).unwrap();
        prop_assert_eq!(a.events_fired, b.events_fired);
        prop_assert_eq!(a.simulated_seconds, b.simulated_seconds);
        prop_assert_eq!(a.estimates, b.estimates);
    }
}
