//! Property-based tests for the simulation orchestration layer.

use proptest::prelude::*;

use bighouse_des::{Calendar, Engine};
use bighouse_dists::Distribution;
use bighouse_sim::{run_serial, AdmissionPolicy, ClusterSim, ExperimentConfig, ResilienceConfig};
use bighouse_workloads::{StandardWorkload, Workload};

fn capped_config(utilization: f64, servers: usize, cores: usize) -> ExperimentConfig {
    ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_servers(servers)
        .with_cores(cores)
        .with_utilization(utilization)
        .with_target_accuracy(0.2)
        .with_warmup(20)
        .with_calibration(200)
        .with_max_events(200_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and any reasonable configuration, a (possibly
    /// event-capped) run yields internally consistent results: response
    /// times above the service floor, utilization in range, counters sane.
    #[test]
    fn reports_are_internally_consistent(
        seed in any::<u64>(),
        utilization in 0.1f64..0.8,
        servers in 1usize..4,
        cores in 1usize..8,
    ) {
        let report = run_serial(&capped_config(utilization, servers, cores), seed).unwrap();
        prop_assert!(report.events_fired > 0);
        prop_assert!(report.simulated_seconds > 0.0);
        prop_assert!(report.cluster.mean_utilization >= 0.0);
        prop_assert!(report.cluster.mean_utilization <= 1.0 + 1e-9);
        prop_assert!(report.cluster.jobs_completed > 0);
        if let Some(est) = report.metric("response_time") {
            prop_assert!(est.mean > 0.0);
            for q in &est.quantiles {
                prop_assert!(q.value >= 0.0);
            }
        }
    }

    /// Determinism holds for arbitrary seeds and configurations.
    #[test]
    fn determinism_for_any_seed(seed in any::<u64>(), utilization in 0.1f64..0.8) {
        let config = capped_config(utilization, 2, 4);
        let a = run_serial(&config, seed).unwrap();
        let b = run_serial(&config, seed).unwrap();
        prop_assert_eq!(a.events_fired, b.events_fired);
        prop_assert_eq!(a.simulated_seconds, b.simulated_seconds);
        prop_assert_eq!(a.estimates, b.estimates);
    }

    /// Hedged cancellation never double-completes and never leaks a
    /// request: for any seed and any hedge deadline, the final disposition
    /// ledger balances exactly — every admitted request is goodput, timed
    /// out, or still in flight at the cap, and every offered arrival is
    /// admitted or shed. A double completion (the loser landing after the
    /// winner already retired the pair) or a leaked hedge pair would break
    /// the balance.
    #[test]
    fn hedged_requests_never_double_complete_or_leak(
        seed in any::<u64>(),
        utilization in 0.2f64..0.8,
        deadline_scale in 0.1f64..3.0,
        servers in 2usize..5,
    ) {
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        let config = capped_config(utilization, servers, 4)
            .with_resilience(ResilienceConfig::new().with_hedge(deadline_scale * service_mean));
        let report = run_serial(&config, seed).unwrap();
        let rs = report.cluster.resilience.expect("resilience mode on");
        prop_assert_eq!(rs.admitted + rs.shed, rs.offered);
        prop_assert_eq!(
            rs.goodput + rs.timed_out + rs.in_flight_at_end,
            rs.admitted,
            "disposition ledger out of balance: {:?}",
            rs
        );
        prop_assert!(rs.hedge_wins <= rs.hedges_launched);
        prop_assert!(rs.hedge_cancelled <= rs.hedges_launched);
        // Goodput can never exceed total completed work on the servers.
        prop_assert!(rs.goodput <= report.cluster.jobs_completed);
    }

    /// Admission control composed with hedging stays exactly conservative:
    /// the shed and disposition ledgers both balance for any bounded-queue
    /// capacity, and the in-flight census respects the queue bound.
    #[test]
    fn admission_and_hedging_compose_without_losing_requests(
        seed in any::<u64>(),
        utilization in 0.5f64..0.95,
        capacity in 2usize..32,
    ) {
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        let config = capped_config(utilization, 3, 4)
            .with_resilience(
                ResilienceConfig::new()
                    .with_admission(AdmissionPolicy::BoundedQueue { capacity })
                    .with_hedge(service_mean),
            );
        let report = run_serial(&config, seed).unwrap();
        let rs = report.cluster.resilience.expect("resilience mode on");
        prop_assert_eq!(rs.admitted + rs.shed, rs.offered);
        prop_assert_eq!(rs.goodput + rs.timed_out + rs.in_flight_at_end, rs.admitted);
        prop_assert!(
            rs.in_flight_at_end as usize <= capacity,
            "in-flight census {} exceeds the queue bound {}",
            rs.in_flight_at_end,
            capacity
        );
    }

    /// Hedging never leaks calendar handles: after heavy hedge churn the
    /// pending-event census is bounded by the live requests (at most a
    /// timeout and a hedge-fire handle each) plus the per-server attention
    /// events, the arrival event, and the observation epoch — dead
    /// hedge-fire events for retired requests must have been cancelled,
    /// not left to accumulate.
    #[test]
    fn hedge_churn_leaves_no_dangling_calendar_events(
        seed in any::<u64>(),
        deadline_scale in 0.05f64..1.0,
        servers in 2usize..5,
    ) {
        let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
        let config = capped_config(0.7, servers, 4)
            .with_resilience(ResilienceConfig::new().with_hedge(deadline_scale * service_mean));
        let mut sim = ClusterSim::new(config, seed).unwrap();
        let mut cal = Calendar::new();
        sim.prime(&mut cal);
        let mut engine = Engine::from_parts(sim, cal);
        engine.run_with_limit(100_000);
        let stats = engine.calendar().stats();
        let pending = engine.calendar().pending();
        let now = engine.now();
        let sim = engine.into_simulation();
        let rs = sim.summary(now).resilience.expect("resilience mode on");
        // Conservation: every scheduled event either fired, was cancelled,
        // or is still pending.
        prop_assert_eq!(
            stats.scheduled,
            stats.fired + stats.cancelled + pending as u64
        );
        let bound = 2 * rs.in_flight_at_end as usize + servers + 2;
        prop_assert!(
            pending <= bound,
            "{} pending events for {} in-flight requests on {} servers: \
             hedge handles are leaking",
            pending,
            rs.in_flight_at_end,
            servers
        );
    }
}
