//! Property-based fuzzing of the master↔slave frame codec: for any
//! payload, any truncation point, and any single bit flip, the decoder
//! must either return the exact original frame or a typed
//! [`SimError::Frame`] — never panic, never silently accept corruption.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

use bighouse_sim::procslave::{read_frame, write_frame};
use bighouse_sim::SimError;

/// A stand-in payload exercising nested structure, strings, floats, and
/// optional fields — the same serde surface the real protocol frames use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Payload {
    slave: usize,
    incarnation: u32,
    events: u64,
    label: String,
    moments: Vec<f64>,
    note: Option<String>,
}

fn payload_strategy() -> impl Strategy<Value = Payload> {
    (
        any::<usize>(),
        any::<u32>(),
        any::<u64>(),
        // Strings exercise JSON escaping; keep them printable-ish but
        // include quotes/backslashes via the regex class.
        "[ -~]{0,64}",
        proptest::collection::vec(-1e12f64..1e12, 0..8),
        proptest::option::of("[ -~]{0,16}"),
    )
        .prop_map(|(slave, incarnation, events, label, moments, note)| Payload {
            slave,
            incarnation,
            events,
            label,
            moments,
            note,
        })
}

fn encode(payload: &Payload) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).expect("encoding to a Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: whatever goes in comes out bit-identical, and the
    /// stream position lands exactly on the next frame boundary.
    #[test]
    fn roundtrip_is_exact(payload in payload_strategy()) {
        let buf = encode(&payload);
        let mut cursor = &buf[..];
        let back: Payload = read_frame(&mut cursor)
            .expect("valid frame decodes")
            .expect("one frame present");
        prop_assert_eq!(back, payload);
        // The decoder consumed the whole frame: a second read is a clean
        // end-of-stream, not garbage.
        prop_assert!(read_frame::<_, Payload>(&mut cursor).expect("clean EOF").is_none());
    }

    /// Truncation at any interior byte is a typed error; truncation at
    /// byte zero is a clean end-of-stream.
    #[test]
    fn any_truncation_is_typed(payload in payload_strategy(), frac in 0.0f64..1.0) {
        let buf = encode(&payload);
        // Map the fraction onto [0, len): always a strict prefix.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_precision_loss)]
        let cut = ((buf.len() as f64) * frac) as usize;
        let mut cursor = &buf[..cut.min(buf.len() - 1)];
        let result = read_frame::<_, Payload>(&mut cursor);
        if cut == 0 {
            prop_assert!(matches!(result, Ok(None)), "empty stream is clean EOF");
        } else {
            prop_assert!(
                matches!(result, Err(SimError::Frame { .. })),
                "truncated at {cut}/{}: {result:?}", buf.len()
            );
        }
    }

    /// A single flipped bit anywhere in the frame must never decode back
    /// to the original payload: the length prefix rejects, the checksum
    /// trips, or deserialization fails — all typed, none panicking.
    #[test]
    fn any_single_bitflip_is_rejected(payload in payload_strategy(), bit in any::<proptest::sample::Index>()) {
        let mut buf = encode(&payload);
        let nbits = buf.len() * 8;
        let flip = bit.index(nbits);
        buf[flip / 8] ^= 1 << (flip % 8);
        let mut cursor = &buf[..];
        match read_frame::<_, Payload>(&mut cursor) {
            Err(SimError::Frame { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error class: {other}"),
            Ok(decoded) => prop_assert!(
                decoded.as_ref() != Some(&payload),
                "flipped bit {flip} decoded silently back to the original"
            ),
        }
    }

    /// Random garbage (not even a frame) never panics the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut cursor = &bytes[..];
        let _ = read_frame::<_, Payload>(&mut cursor);
    }
}
