//! Top-level helper library for the BigHouse reproduction repository.
//!
//! The real public API lives in the [`bighouse`] crate; this package exists so
//! that `examples/` and `tests/` can live at the repository root as the
//! canonical entry points. It re-exports the umbrella crate for convenience.

pub use bighouse;
