//! End-to-end validation of the full simulation stack against closed-form
//! queueing theory.
//!
//! BigHouse's raison d'être is that G/G/k queues have no closed form — but
//! the special cases that *do* (M/M/1, M/D/1, M/G/1 via Pollaczek–Khinchine,
//! M/M/k via Erlang-C) give us exact targets the whole pipeline (engine →
//! server model → statistics engine) must hit. Any bias in the event loop,
//! the service accounting, or the sampling machinery shows up here.

use bighouse::prelude::*;

/// Builds a workload with the given arrival and service distributions,
/// tabulated as empirical distributions (as all BigHouse workloads are).
fn workload(arrivals: &dyn Distribution, service: &dyn Distribution, seed: u64) -> Workload {
    let mut rng = SimRng::from_seed(seed);
    let arr: Vec<f64> = (0..400_000)
        .map(|_| arrivals.sample(&mut rng).max(1e-12))
        .collect();
    let svc: Vec<f64> = (0..400_000)
        .map(|_| service.sample(&mut rng).max(1e-12))
        .collect();
    Workload::new(
        "validation",
        Empirical::from_samples(&arr).unwrap(),
        Empirical::from_samples(&svc).unwrap(),
    )
}

/// Runs a single-server experiment at tight accuracy and returns the mean
/// response time estimate.
fn simulate_mean_response(w: Workload, cores: usize, seed: u64) -> f64 {
    let config = ExperimentConfig::new(w)
        .with_cores(cores)
        .with_metric_spec(
            MetricKind::ResponseTime,
            MetricSpec::new("response_time")
                .with_target_accuracy(0.01)
                .with_quantiles(&[]),
        )
        .with_max_events(100_000_000);
    let report = run_serial(&config, seed).expect("valid config");
    assert!(report.converged, "validation run must converge");
    report.metric("response_time").unwrap().mean
}

/// M/M/1: E[T] = 1 / (µ − λ).
#[test]
fn mm1_mean_response_matches_theory() {
    let mu = 10.0;
    for rho in [0.3, 0.6, 0.8] {
        let lambda = rho * mu;
        let w = workload(
            &Exponential::new(lambda).unwrap(),
            &Exponential::new(mu).unwrap(),
            1,
        );
        let simulated = simulate_mean_response(w, 1, 2);
        let theory = bighouse::analytic::mm1::mean_response(lambda, mu);
        let err = (simulated - theory).abs() / theory;
        assert!(
            err < 0.08,
            "M/M/1 rho={rho}: simulated {simulated:.5}, theory {theory:.5}, err {err:.3}"
        );
    }
}

/// M/D/1 via Pollaczek–Khinchine: E[W] = ρ/(2(1−ρ)) · E[S], E[T] = E[W] + E[S].
#[test]
fn md1_mean_response_matches_pollaczek_khinchine() {
    let service = 0.1;
    for rho in [0.4, 0.7] {
        let lambda = rho / service;
        let w = workload(
            &Exponential::new(lambda).unwrap(),
            &Deterministic::new(service).unwrap(),
            3,
        );
        let simulated = simulate_mean_response(w, 1, 4);
        let theory = bighouse::analytic::mg1::mean_response(lambda, service, 0.0);
        let err = (simulated - theory).abs() / theory;
        assert!(
            err < 0.08,
            "M/D/1 rho={rho}: simulated {simulated:.5}, theory {theory:.5}, err {err:.3}"
        );
    }
}

/// M/G/1 with a heavy-tailed (H2, C_v = 2) service distribution:
/// E[W] = λ·E[S²] / (2(1−ρ)).
#[test]
fn mg1_heavy_tail_matches_pollaczek_khinchine() {
    let mean_s = 0.05;
    let cv = 2.0;
    let h2 = HyperExponential::from_mean_cv(mean_s, cv).unwrap();
    let second_moment = h2.variance() + mean_s * mean_s;
    for rho in [0.4, 0.6] {
        let lambda = rho / mean_s;
        let w = workload(&Exponential::new(lambda).unwrap(), &h2, 5);
        let simulated = simulate_mean_response(w, 1, 6);
        let theory = mean_s + lambda * second_moment / (2.0 * (1.0 - rho));
        // Cross-check our arithmetic against the analytic crate.
        let crate_theory = bighouse::analytic::mg1::mean_response(lambda, mean_s, cv);
        assert!((theory - crate_theory).abs() < 1e-12);
        let err = (simulated - theory).abs() / theory;
        assert!(
            err < 0.10,
            "M/G/1 rho={rho}: simulated {simulated:.5}, theory {theory:.5}, err {err:.3}"
        );
    }
}

/// M/M/k via Erlang-C: E[T] = E[S] + C(k, a)/(kµ − λ) with
/// C the Erlang-C delay probability and a = λ/µ the offered load.
#[test]
fn mmk_mean_response_matches_erlang_c() {
    let mu = 20.0; // per-core service rate
    let k = 4;
    for rho in [0.5, 0.8] {
        let lambda = rho * k as f64 * mu;
        let w = workload(
            &Exponential::new(lambda).unwrap(),
            &Exponential::new(mu).unwrap(),
            7,
        );
        let simulated = simulate_mean_response(w, k, 8);
        let theory = bighouse::analytic::mmk::mean_response(lambda, mu, k as u32);
        let err = (simulated - theory).abs() / theory;
        assert!(
            err < 0.08,
            "M/M/{k} rho={rho}: simulated {simulated:.5}, theory {theory:.5}, err {err:.3}"
        );
    }
}

/// M/M/1 tail: the response time is exponential with rate µ − λ, so its
/// 95th percentile is −ln(0.05)/(µ−λ). This validates the whole
/// histogram-quantile pipeline, not just means.
#[test]
fn mm1_p95_matches_exponential_response() {
    let (lambda, mu) = (6.0, 10.0);
    let w = workload(
        &Exponential::new(lambda).unwrap(),
        &Exponential::new(mu).unwrap(),
        11,
    );
    let config = ExperimentConfig::new(w)
        .with_cores(1)
        .with_target_accuracy(0.01)
        .with_quantile(0.95)
        .with_max_events(100_000_000);
    let report = run_serial(&config, 12).expect("valid config");
    assert!(report.converged);
    let simulated = report.quantile("response_time", 0.95).unwrap();
    let theory = bighouse::analytic::mm1::response_quantile(lambda, mu, 0.95);
    let err = (simulated - theory).abs() / theory;
    assert!(
        err < 0.08,
        "M/M/1 p95: simulated {simulated:.5}, theory {theory:.5}, err {err:.3}"
    );
}

/// Little's law cross-check: completed jobs per simulated second must match
/// the offered arrival rate (work conservation end to end).
#[test]
fn throughput_matches_offered_load() {
    let lambda = 50.0;
    let w = workload(
        &Exponential::new(lambda).unwrap(),
        &Exponential::new(100.0).unwrap(),
        9,
    );
    let config = ExperimentConfig::new(w)
        .with_cores(1)
        .with_target_accuracy(0.02)
        .with_max_events(50_000_000);
    let report = run_serial(&config, 10).expect("valid config");
    assert!(report.converged);
    let throughput = report.cluster.jobs_completed as f64 / report.simulated_seconds;
    let err = (throughput - lambda).abs() / lambda;
    assert!(
        err < 0.05,
        "throughput {throughput:.2} vs offered {lambda:.2} (err {err:.3})"
    );
}

/// The simulated utilization must equal ρ = λ·E[S]/k.
#[test]
fn utilization_matches_rho() {
    let w = Workload::standard(StandardWorkload::Web);
    for rho in [0.25, 0.5, 0.75] {
        let config = ExperimentConfig::new(w.at_utilization(rho, 4))
            .with_cores(4)
            .with_target_accuracy(0.05)
            .with_max_events(50_000_000);
        let report = run_serial(&config, 11).expect("valid config");
        let err = (report.cluster.mean_utilization - rho).abs();
        assert!(
            err < 0.05,
            "utilization {} vs rho {rho}",
            report.cluster.mean_utilization
        );
    }
}
