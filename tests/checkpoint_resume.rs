//! Whole-pipeline kill-and-resume tests: a run interrupted at an epoch
//! boundary and resumed from its on-disk checkpoint must finish with
//! **bit-identical** estimates to an uninterrupted run of the same master
//! seed — through the public API, exactly as the CLI drives it.

use bighouse::prelude::*;

fn config() -> ExperimentConfig {
    ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_cores(2)
        .with_utilization(0.5)
        .with_target_accuracy(0.05)
        .with_warmup(100)
        .with_calibration(500)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bighouse-resume-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn estimates_json(report: &SimulationReport) -> String {
    // serde_json is built with float_roundtrip: string equality on the
    // serialized estimates is f64 bit equality.
    serde_json::to_string(&report.estimates).unwrap()
}

/// The determinism contract end to end: reference run vs. a run that is
/// interrupted after two epochs, "killed" (all in-memory state dropped),
/// and resumed from disk by what is effectively a fresh process.
#[test]
fn killed_and_resumed_run_matches_reference_bit_for_bit() {
    const SEED: u64 = 2012;
    const EPOCH: u64 = 10_000;

    let reference = run_resumable(
        &config(),
        SEED,
        &RunOptions {
            epoch_events: EPOCH,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert!(reference.converged);
    assert_eq!(reference.termination, TerminationReason::Converged);

    let dir = temp_dir("kill");
    let partial = run_resumable(
        &config(),
        SEED,
        &RunOptions {
            epoch_events: EPOCH,
            checkpoint: Some(CheckpointConfig::new(&dir)),
            max_epochs: Some(2),
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(partial.termination, TerminationReason::Interrupted);
    assert!(
        !partial.converged,
        "two small epochs must not already meet the 5% target"
    );
    assert!(partial.events_fired < reference.events_fired);

    // Nothing survives the "kill" except the checkpoint directory.
    drop(partial);
    let resumed = run_resumable(
        &config(),
        SEED,
        &RunOptions {
            epoch_events: EPOCH,
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.converged);
    assert_eq!(resumed.termination, TerminationReason::Converged);

    assert_eq!(reference.events_fired, resumed.events_fired);
    assert_eq!(
        reference.simulated_seconds.to_bits(),
        resumed.simulated_seconds.to_bits()
    );
    assert_eq!(
        estimates_json(&reference),
        estimates_json(&resumed),
        "resumed estimates (means, CIs, quantiles) must be bit-identical"
    );
    assert_eq!(
        serde_json::to_string(&reference.cluster).unwrap(),
        serde_json::to_string(&resumed.cluster).unwrap(),
        "cluster summary (energy, utilization, fractions) must match too"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two interruptions in a row (kill, resume, kill again, resume again)
/// still land on the reference trajectory: resumability composes.
#[test]
fn double_interruption_still_matches_reference() {
    const SEED: u64 = 77;
    const EPOCH: u64 = 10_000;

    let reference = run_resumable(
        &config(),
        SEED,
        &RunOptions {
            epoch_events: EPOCH,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert!(reference.converged);

    let dir = temp_dir("double");
    for _ in 0..2 {
        let partial = run_resumable(
            &config(),
            SEED,
            &RunOptions {
                epoch_events: EPOCH,
                checkpoint: Some(CheckpointConfig::new(&dir)),
                resume: dir.join("bighouse.ckpt").exists(),
                max_epochs: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(partial.termination, TerminationReason::Interrupted);
    }
    let resumed = run_resumable(
        &config(),
        SEED,
        &RunOptions {
            epoch_events: EPOCH,
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.converged);
    assert_eq!(reference.events_fired, resumed.events_fired);
    assert_eq!(estimates_json(&reference), estimates_json(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A report (with its termination reason) survives the JSON round trip the
/// CLI uses for `out=`, and a finished run re-resumed reports `Resumed`.
#[test]
fn report_serialization_and_finished_resume() {
    const SEED: u64 = 9;
    let dir = temp_dir("finished");
    let opts = RunOptions {
        epoch_events: 10_000,
        checkpoint: Some(CheckpointConfig::new(&dir)),
        ..RunOptions::default()
    };
    let report = run_resumable(&config(), SEED, &opts).unwrap();
    assert!(report.converged);

    let json = serde_json::to_string(&report).unwrap();
    let back: SimulationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.termination, TerminationReason::Converged);
    assert_eq!(estimates_json(&report), estimates_json(&back));

    let again = run_resumable(
        &config(),
        SEED,
        &RunOptions {
            resume: true,
            ..opts
        },
    )
    .unwrap();
    assert_eq!(again.termination, TerminationReason::Resumed);
    assert_eq!(estimates_json(&report), estimates_json(&again));
    let _ = std::fs::remove_dir_all(&dir);
}
