//! Acceptance test for the fault-tolerant sweep orchestrator: a grid
//! containing a deliberately panicking config and a deliberately
//! stalling config must complete with both quarantined after bounded
//! retries, every healthy config bit-identical to an individual run of
//! its derived seed, and a killed-and-resumed sweep must reproduce the
//! identical aggregate report.

use std::time::Duration;

use bighouse::prelude::*;
use bighouse::sim::SweepFaultInjection;

const MASTER_SEED: u64 = 2012;
const EPOCH_EVENTS: u64 = 50_000;

/// Three healthy utilization points plus two poison entries. The poison
/// configs are structurally valid — the injection hook is what makes
/// them panic or stall, standing in for the real-world config that only
/// misbehaves at runtime.
fn grid() -> Vec<SweepEntry> {
    let healthy = |u: f64| {
        ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
            .with_utilization(u)
            .with_target_accuracy(0.15)
            .with_warmup(100)
            .with_calibration(500)
    };
    vec![
        SweepEntry::new("utilization=0.3", healthy(0.3)),
        SweepEntry::new("utilization=0.5", healthy(0.5)),
        SweepEntry::new("utilization=0.7", healthy(0.7)),
        SweepEntry::new("poison-panic", healthy(0.4)),
        SweepEntry::new("poison-stall", healthy(0.4)),
    ]
}

fn opts() -> SweepOptions {
    SweepOptions {
        epoch_events: EPOCH_EVENTS,
        max_retries: 1,
        deadline: Some(Duration::from_secs(1)),
        fault_injection: Some(SweepFaultInjection {
            panic_ids: vec!["poison-panic".into()],
            stall_ids: vec!["poison-stall".into()],
        }),
        ..SweepOptions::default()
    }
}

#[test]
fn poison_configs_are_quarantined_and_the_sweep_is_crash_resumable() {
    let reference = run_sweep(&grid(), MASTER_SEED, &opts()).expect("sweep runs");

    // The healthy configs all completed; the poison configs were retried
    // (max_retries = 1 → exactly two attempts) and quarantined with
    // typed errors telling panic and stall apart.
    assert_eq!(reference.completed.len(), 3, "healthy configs complete");
    assert_eq!(reference.quarantined.len(), 2, "poison configs quarantined");
    assert!(!reference.interrupted, "all configs were decided");
    for q in &reference.quarantined {
        assert_eq!(q.attempts, 2, "{}: bounded retries", q.id);
        match q.id.as_str() {
            "poison-panic" => assert!(
                matches!(q.error, SweepError::Panicked { .. }),
                "{:?}",
                q.error
            ),
            "poison-stall" => assert!(
                matches!(q.error, SweepError::DeadlineExceeded { .. }),
                "{:?}",
                q.error
            ),
            other => panic!("unexpected quarantined config {other}"),
        }
    }
    // Retries are counted: two poison configs, one retry each.
    assert_eq!(reference.retries, 2);

    // Every healthy result is bit-identical to running that config alone
    // with its derived seed — the pool, the retries, and the poison
    // neighbors perturbed nothing.
    for outcome in &reference.completed {
        let entry = grid()
            .into_iter()
            .find(|e| e.id == outcome.id)
            .expect("completed id comes from the grid");
        assert_eq!(outcome.seed, config_seed(MASTER_SEED, &outcome.id));
        let solo = run_resumable(
            &entry.config,
            outcome.seed,
            &RunOptions {
                epoch_events: EPOCH_EVENTS,
                ..RunOptions::default()
            },
        )
        .expect("healthy config runs solo");
        assert_eq!(
            outcome.report.events_fired, solo.events_fired,
            "{}",
            outcome.id
        );
        assert_eq!(
            serde_json::to_string(&outcome.report.estimates).unwrap(),
            serde_json::to_string(&solo.estimates).unwrap(),
            "{}: sweep result must match the solo run bit for bit",
            outcome.id
        );
    }

    // Kill the same sweep after two decided configs (the deterministic
    // stand-in for a SIGKILL), then resume from the ledger: the final
    // report is identical to the uninterrupted reference.
    let dir = std::env::temp_dir().join(format!("bighouse-sweep-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let partial = run_sweep(
        &grid(),
        MASTER_SEED,
        &SweepOptions {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            max_decided: Some(2),
            ..opts()
        },
    )
    .expect("partial sweep runs");
    assert!(
        partial.completed.len() + partial.quarantined.len() >= 2,
        "at least the two decided configs are in the ledger"
    );
    let resumed = run_sweep(
        &grid(),
        MASTER_SEED,
        &SweepOptions {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            ..opts()
        },
    )
    .expect("resume from ledger");
    assert!(
        resumed.runtime.resumed > 0,
        "some configs came from the ledger"
    );
    assert_eq!(
        serde_json::to_string(&reference.canonical()).unwrap(),
        serde_json::to_string(&resumed.canonical()).unwrap(),
        "killed-and-resumed sweep must reproduce the identical report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A SIGKILL can land mid-write and tear the sweep ledger in half. The
/// checkpoint store keeps the previous snapshot as a fallback, so a
/// resume from a torn `bighouse.sweep` must silently recover from
/// `bighouse.sweep.prev` and still reproduce the identical report; only
/// when *every* snapshot is corrupt may it refuse — with a typed
/// checkpoint error, never a panic.
#[test]
fn torn_ledger_falls_back_to_prev_and_double_corruption_is_typed() {
    let healthy = |u: f64| {
        ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
            .with_utilization(u)
            .with_target_accuracy(0.15)
            .with_warmup(100)
            .with_calibration(500)
    };
    let entries = vec![
        SweepEntry::new("utilization=0.35", healthy(0.35)),
        SweepEntry::new("utilization=0.55", healthy(0.55)),
        SweepEntry::new("utilization=0.65", healthy(0.65)),
    ];
    let base = SweepOptions {
        epoch_events: EPOCH_EVENTS,
        workers: 2,
        ..SweepOptions::default()
    };
    let reference = run_sweep(&entries, MASTER_SEED, &base).expect("reference sweep");

    let dir = std::env::temp_dir().join(format!("bighouse-torn-ledger-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let partial = run_sweep(
        &entries,
        MASTER_SEED,
        &SweepOptions {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            max_decided: Some(2),
            ..base.clone()
        },
    )
    .expect("partial sweep");
    assert!(partial.completed.len() >= 2);

    // Tear the current ledger mid-frame, as a crash during a write
    // would: the length/checksum framing no longer validates.
    let ledger = dir.join("bighouse.sweep");
    let prev = dir.join("bighouse.sweep.prev");
    let bytes = std::fs::read(&ledger).expect("ledger exists");
    assert!(prev.exists(), "interval saves must have rotated a fallback");
    std::fs::write(&ledger, &bytes[..bytes.len() / 2]).expect("tear ledger");

    let resumed = run_sweep(
        &entries,
        MASTER_SEED,
        &SweepOptions {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            ..base.clone()
        },
    )
    .expect("resume must fall back to the .prev snapshot");
    assert!(!resumed.interrupted);
    assert_eq!(
        serde_json::to_string(&reference.canonical()).unwrap(),
        serde_json::to_string(&resumed.canonical()).unwrap(),
        "torn-ledger resume must reproduce the identical report"
    );

    // Corrupt every snapshot: the orchestrator must refuse with a typed
    // checkpoint error instead of silently restarting (or panicking).
    std::fs::write(&ledger, b"not a ledger").unwrap();
    std::fs::write(&prev, b"also not a ledger").unwrap();
    let err = run_sweep(
        &entries,
        MASTER_SEED,
        &SweepOptions {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            ..base
        },
    )
    .expect_err("doubly-corrupt ledger must be a typed error");
    assert!(
        matches!(err, SimError::Checkpoint(ref msg) if msg.contains("corrupt")),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
