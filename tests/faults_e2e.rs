//! End-to-end fault-injection tests: availability, request accounting, and
//! graceful degradation of the parallel runner, all through the public API.

use bighouse::prelude::*;

fn faulty_config(mtbf: f64, mttr: f64) -> ExperimentConfig {
    ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_servers(4)
        .with_cores(4)
        .with_utilization(0.5)
        .with_faults(FaultProcess::exponential(mtbf, mttr).unwrap())
        .with_metric(MetricKind::Availability)
        .with_target_accuracy(0.1)
        .with_warmup(100)
        .with_calibration(500)
        .with_max_events(100_000_000)
}

/// The alternating renewal process's steady state, recovered through the
/// full pipeline: measured availability matches MTBF / (MTBF + MTTR) within
/// the reported confidence interval (plus slack for finite-run bias), and
/// the estimate converges through the standard statistics engine.
#[test]
fn measured_availability_matches_renewal_theory() {
    let mtbf = 20.0;
    let mttr = 2.0;
    let analytic = mtbf / (mtbf + mttr);

    let report = run_serial(&faulty_config(mtbf, mttr), 17).expect("valid config");
    assert!(report.converged, "fault run should converge normally");

    let availability = report.metric("availability").expect("tracked");
    assert!(availability.samples_kept > 0);
    let tolerance = (2.0 * availability.mean_half_width).max(0.05);
    assert!(
        (availability.mean - analytic).abs() < tolerance,
        "availability {} vs MTBF/(MTBF+MTTR) = {analytic} (tolerance {tolerance})",
        availability.mean
    );

    // Response time still converges alongside the fault machinery.
    assert!(report.metric("response_time").is_some());
}

/// Conservation of requests: with timeouts and retries active, every
/// admitted request ends in exactly one bucket — goodput, timed out, or
/// still in flight when the run stops.
#[test]
fn goodput_and_timeouts_account_for_all_requests() {
    let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
    let config = faulty_config(15.0, 1.5)
        .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
        .with_retry(RetryPolicy::new(service_mean * 20.0).with_max_retries(3));

    let report = run_serial(&config, 18).expect("valid config");
    let fs = report.cluster.faults.expect("fault mode on");

    assert!(fs.server_failures > 0, "no failures injected: {fs:?}");
    assert!(fs.goodput > 0, "no requests completed: {fs:?}");
    assert_eq!(
        fs.goodput + fs.timed_out + fs.in_flight_at_end,
        fs.admitted,
        "request conservation violated: {fs:?}"
    );
    // Retries only happen after a timeout fires with budget remaining.
    if fs.retries > 0 {
        assert!(fs.admitted > fs.goodput || fs.in_flight_at_end > 0 || fs.timed_out > 0);
    }
}

/// A slave that panics mid-run is contained: the supervisor resurrects it
/// from its last checkpoint, nobody is dropped, and the merge still
/// produces estimates.
#[test]
fn parallel_run_survives_a_panicking_slave() {
    let config = ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_cores(4)
        .with_utilization(0.4)
        .with_target_accuracy(0.1)
        .with_warmup(100)
        .with_calibration(500)
        .with_max_events(100_000_000);

    let outcome = ParallelRunner::new(config, 3)
        .with_forced_panic(1)
        .run(29)
        .expect("survivors should carry the run");

    assert!(
        outcome.dead_slaves.is_empty(),
        "a transiently panicking slave is resurrected, not dropped: {:?}",
        outcome.dead_slaves
    );
    assert!(outcome.resurrections >= 1, "the panic forced a restart");
    assert!(!outcome.estimates.is_empty(), "no merged estimates");
    let response = outcome
        .estimates
        .iter()
        .find(|e| e.name == "response_time")
        .expect("merged response-time estimate");
    assert!(response.mean > 0.0);
}

/// Satellite check for paranoid mode: under *heavy* fault injection with
/// timeouts and retries — the regime where accounting bugs would hide —
/// the runtime auditor sweeps the same conservation invariant the fault
/// summary reports, and both agree the books balance.
#[test]
fn paranoid_audit_passes_under_heavy_faults_and_retries() {
    let service_mean = Workload::standard(StandardWorkload::Web).service().mean();
    let config = faulty_config(10.0, 2.0)
        .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
        .with_retry(RetryPolicy::new(service_mean * 10.0).with_max_retries(3))
        .with_audit(AuditConfig::default());

    let report = run_serial(&config, 19).expect("valid config");
    let fs = report.cluster.faults.expect("fault mode on");
    assert!(fs.server_failures > 0, "no failures injected: {fs:?}");
    assert_eq!(
        fs.goodput + fs.timed_out + fs.in_flight_at_end,
        fs.admitted,
        "request conservation violated: {fs:?}"
    );

    let audit = report.audit.expect("paranoid mode was on");
    assert!(
        audit.passed(),
        "auditor flagged a healthy (if battered) run: {:?}",
        audit.violations
    );
    assert!(audit.enabled);
    assert!(audit.checks_run > 0, "the request ledger was never swept");
    assert!(
        audit.observations_checked > 0,
        "no observations were vetted"
    );
    // An unaudited same-seed run agrees bit-for-bit: paranoia is free.
    let plain_config = faulty_config(10.0, 2.0)
        .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
        .with_retry(RetryPolicy::new(service_mean * 10.0).with_max_retries(3));
    let plain = run_serial(&plain_config, 19).expect("valid config");
    assert_eq!(plain.events_fired, report.events_fired);
    assert_eq!(
        plain.simulated_seconds.to_bits(),
        report.simulated_seconds.to_bits()
    );
}
