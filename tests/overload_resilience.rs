//! End-to-end validation of the overload-resilience subsystem.
//!
//! Three pillars:
//!
//! 1. **Analytic oracle** — a cluster under bounded-queue admission with
//!    capacity equal to its core count is exactly an M/M/k/k loss system,
//!    so the measured shed fraction must match the Erlang-B blocking
//!    probability.
//! 2. **Metastability** — an overload ramp combined with client-side
//!    timeout/retry drives the cluster into a retry storm that persists
//!    *after* the offered load returns to normal (goodput hysteresis),
//!    reproducing the signature failure mode of real serving systems.
//! 3. **Recovery** — the same scenario with admission control sheds the
//!    excess at the front door instead of queueing it, and goodput
//!    recovers to its pre-ramp level as soon as the ramp ends.
//!
//! The phase-windowed runs drive the engine manually (via the slave
//! constructor, which never stops on its own convergence) so goodput can
//! be sampled at exact simulated-time boundaries.

use std::collections::HashMap;

use bighouse::prelude::*;

/// Builds a workload from explicit arrival/service distributions, the way
/// all BigHouse workloads are tabulated (matches `queueing_theory.rs`).
fn workload(arrivals: &dyn Distribution, service: &dyn Distribution, seed: u64) -> Workload {
    let mut rng = SimRng::from_seed(seed);
    let arr: Vec<f64> = (0..400_000)
        .map(|_| arrivals.sample(&mut rng).max(1e-12))
        .collect();
    let svc: Vec<f64> = (0..400_000)
        .map(|_| service.sample(&mut rng).max(1e-12))
        .collect();
    Workload::new(
        "validation",
        Empirical::from_samples(&arr).unwrap(),
        Empirical::from_samples(&svc).unwrap(),
    )
}

/// Advances the engine until simulated time reaches `t` seconds. The
/// batch size bounds the overshoot past `t`: phase-windowed runs need
/// fine batches so snapshots land close to their window boundaries.
fn drive_to(engine: &mut Engine<ClusterSim>, t: f64, batch: u64) {
    while engine.now().as_seconds() < t {
        let stats = engine.run_with_limit(batch);
        assert!(
            stats.events_fired > 0,
            "calendar drained at {} before reaching {t}",
            engine.now().as_seconds()
        );
    }
}

/// Snapshot of the resilience ledger at the current simulated time.
fn ledger(engine: &Engine<ClusterSim>) -> ResilienceSummary {
    let now = engine.now();
    engine
        .simulation()
        .summary(now)
        .resilience
        .expect("resilience mode on")
}

/// M/M/k/k: a 4-core server behind a bounded queue of exactly 4 slots
/// admits a job only onto an idle core — arrivals beyond that are shed.
/// The shed fraction is the Erlang-B blocking probability, one of the few
/// closed forms a loss system has.
#[test]
fn bounded_queue_blocking_matches_erlang_b() {
    let mu = 10.0; // per-core service rate
    let k = 4u32;
    let a = 3.0; // offered load in erlangs
    let lambda = a * mu;
    let w = workload(
        &Exponential::new(lambda).unwrap(),
        &Exponential::new(mu).unwrap(),
        21,
    );
    let config = ExperimentConfig::new(w)
        .with_cores(k as usize)
        .with_target_accuracy(0.05)
        .with_resilience(
            ResilienceConfig::new().with_admission(AdmissionPolicy::BoundedQueue {
                capacity: k as usize,
            }),
        )
        .with_max_events(20_000_000);
    let mut sim = ClusterSim::new_slave(config, 22, &HashMap::new()).unwrap();
    let mut cal = Calendar::new();
    sim.prime(&mut cal);
    let mut engine = Engine::from_parts(sim, cal);
    // ~300k arrivals give a ±0.2% confidence band around B ≈ 0.206.
    drive_to(&mut engine, 300_000.0 / lambda, 50_000);
    let rs = ledger(&engine);
    assert!(rs.offered > 250_000, "expected a large sample: {rs:?}");
    assert_eq!(rs.admitted + rs.shed, rs.offered, "{rs:?}");
    let measured = rs.shed as f64 / rs.offered as f64;
    let theory = bighouse::analytic::erlang_b(a, k);
    let cross = bighouse::analytic::mmkk::blocking_probability(a, k, k);
    assert!(
        (theory - cross).abs() < 1e-12,
        "Erlang-B and M/M/k/K (K=k) must agree: {theory} vs {cross}"
    );
    let err = (measured - theory).abs() / theory;
    assert!(
        err < 0.05,
        "M/M/{k}/{k} blocking: measured {measured:.4}, Erlang-B {theory:.4}, err {err:.3}"
    );
}

/// The retry-storm scenario shared by the two phase-windowed tests: a
/// 4-core server at 40% baseline load, clients whose timeouts abandon
/// (rather than cancel) the in-flight attempt, and a 5× overload ramp in
/// the middle of the run.
struct Storm {
    config: ExperimentConfig,
    ia: f64,
    ramp_start: f64,
    ramp_end: f64,
}

fn storm_scenario(admission: Option<AdmissionPolicy>) -> Storm {
    let base = ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_cores(4)
        .with_utilization(0.4);
    let ia = base.workload().interarrival().mean();
    let svc = base.workload().service().mean();
    let ramp_start = 2_500.0 * ia;
    let ramp_end = ramp_start + 1_500.0 * ia;
    let mut resilience = ResilienceConfig::new().with_ramp(ramp_start, ramp_end - ramp_start, 5.0);
    if let Some(policy) = admission {
        resilience = resilience.with_admission(policy);
    }
    // The timeout sits far above any wait the baseline load can produce
    // (the uncongested state is solidly stable, even against the Web
    // workload's heavy service tail) but far below the waits the ramp
    // produces (the congested state triggers every client).
    let timeout = 20.0 * svc;
    let config = base
        // The classic retry-storm client: when it gives up on an attempt
        // the server never hears about it, so the abandoned attempt keeps
        // burning a core as zombie work while the retry arrives as fresh
        // load. Once waits exceed the timeout, every admitted request
        // amplifies into up to six server jobs, of which at most one is
        // useful — the offered *work* stays far above capacity even after
        // the arrival rate drops back, which is exactly the metastable
        // trap.
        .with_retry(
            RetryPolicy::new(timeout)
                .with_max_retries(5)
                .with_cancel_on_timeout(false),
        )
        .with_resilience(resilience);
    Storm {
        config,
        ia,
        ramp_start,
        ramp_end,
    }
}

/// Goodput observed in the windows before and after the overload ramp.
struct Phased {
    baseline_rate: f64,
    recovery_rate: f64,
    during_ramp: ResilienceSummary,
    end: ResilienceSummary,
}

fn run_phases(storm: &Storm, seed: u64) -> Phased {
    let sim = ClusterSim::new_slave(storm.config.clone(), seed, &HashMap::new()).unwrap();
    let mut cal = Calendar::new();
    let mut sim = sim;
    sim.prime(&mut cal);
    let mut engine = Engine::from_parts(sim, cal);
    // Fine-grained batches: a snapshot may overshoot its window boundary
    // by at most 128 events (a couple dozen jobs), noise against the
    // 1500–2000-interarrival windows.
    let batch = 128;
    // Baseline window [500·ia, ramp_start): past warm-up, before the ramp.
    let baseline_window = storm.ramp_start - 500.0 * storm.ia;
    drive_to(&mut engine, 500.0 * storm.ia, batch);
    let at_warm = ledger(&engine);
    drive_to(&mut engine, storm.ramp_start, batch);
    let at_ramp_start = ledger(&engine);
    drive_to(&mut engine, storm.ramp_end, batch);
    let during_ramp = ledger(&engine);
    // Recovery window [ramp_end + 200·ia, ramp_end + 900·ia): offered
    // load has been back to baseline for 200 interarrivals when it opens.
    drive_to(&mut engine, storm.ramp_end + 200.0 * storm.ia, batch);
    let at_recovery_open = ledger(&engine);
    drive_to(&mut engine, storm.ramp_end + 900.0 * storm.ia, batch);
    let end = ledger(&engine);
    Phased {
        baseline_rate: (at_ramp_start.goodput - at_warm.goodput) as f64 / baseline_window,
        recovery_rate: (end.goodput - at_recovery_open.goodput) as f64 / (700.0 * storm.ia),
        during_ramp,
        end,
    }
}

/// Without admission control, the ramp's backlog plus retry amplification
/// keeps the cluster congested long after the offered load returns to
/// normal: goodput in the recovery window stays far below the pre-ramp
/// baseline. This is the metastable retry storm.
#[test]
fn retry_storm_is_metastable_without_admission_control() {
    let storm = storm_scenario(None);
    let phased = run_phases(&storm, 31);
    assert!(
        phased.baseline_rate > 0.0,
        "baseline must complete work: {:.4}",
        phased.baseline_rate
    );
    // The ramp itself must have congested the cluster.
    assert!(
        phased.during_ramp.in_flight_at_end > 100,
        "the ramp must build a backlog: {:?}",
        phased.during_ramp
    );
    assert!(
        phased.recovery_rate < 0.5 * phased.baseline_rate,
        "goodput hysteresis expected: baseline {:.4}/s, post-ramp {:.4}/s",
        phased.baseline_rate,
        phased.recovery_rate
    );
    // Exact disposition accounting holds even mid-collapse.
    let rs = &phased.end;
    assert_eq!(rs.admitted + rs.shed, rs.offered, "{rs:?}");
    assert_eq!(
        rs.goodput + rs.timed_out + rs.in_flight_at_end,
        rs.admitted,
        "{rs:?}"
    );
}

/// The same storm behind a bounded queue: the excess is shed at the front
/// door instead of queueing, so when the ramp ends the cluster drains in
/// a few service times and goodput returns to its pre-ramp level.
#[test]
fn admission_control_restores_goodput_after_the_ramp() {
    let storm = storm_scenario(Some(AdmissionPolicy::BoundedQueue { capacity: 12 }));
    let phased = run_phases(&storm, 31);
    assert!(phased.baseline_rate > 0.0);
    assert!(
        phased.during_ramp.shed > 0,
        "the ramp must trip admission control: {:?}",
        phased.during_ramp
    );
    assert!(
        phased.recovery_rate > 0.8 * phased.baseline_rate,
        "admission control must restore goodput: baseline {:.4}/s, post-ramp {:.4}/s",
        phased.baseline_rate,
        phased.recovery_rate
    );
    let rs = &phased.end;
    assert_eq!(rs.admitted + rs.shed, rs.offered, "{rs:?}");
    assert_eq!(
        rs.goodput + rs.timed_out + rs.in_flight_at_end,
        rs.admitted,
        "{rs:?}"
    );
    // The queue bound holds at every sampled instant.
    assert!(rs.in_flight_at_end <= 12, "{rs:?}");
}

/// An empty resilience block only turns request *tracking* on — it must
/// not perturb the simulation trajectory: same events, same simulated
/// time, same estimates to the last bit.
#[test]
fn tracking_only_resilience_is_bit_identical_to_plain_runs() {
    let base = ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_cores(4)
        .with_utilization(0.6)
        .with_target_accuracy(0.1)
        .with_max_events(5_000_000);
    let plain = run_serial(&base, 77).unwrap();
    let tracked = run_serial(&base.with_resilience(ResilienceConfig::new()), 77).unwrap();
    assert_eq!(plain.events_fired, tracked.events_fired);
    assert_eq!(
        plain.simulated_seconds.to_bits(),
        tracked.simulated_seconds.to_bits()
    );
    assert_eq!(
        plain.estimates, tracked.estimates,
        "request tracking perturbed the estimates"
    );
    // And the tracked run's ledger still balances exactly.
    let rs = tracked.cluster.resilience.expect("tracking on");
    assert_eq!(rs.shed, 0);
    assert_eq!(rs.goodput + rs.timed_out + rs.in_flight_at_end, rs.admitted);
}
