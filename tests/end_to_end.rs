//! Cross-crate integration tests: whole-pipeline behaviors that no single
//! crate can check in isolation.

use bighouse::prelude::*;

fn quick(workload: Workload) -> ExperimentConfig {
    ExperimentConfig::new(workload)
        .with_target_accuracy(0.1)
        .with_warmup(100)
        .with_calibration(1000)
        .with_max_events(50_000_000)
}

/// The Figure 1 flow end to end: characterize (synthesize a workload from
/// moments), persist it, reload it, simulate it, and get a sane estimate.
#[test]
fn characterize_save_load_simulate() {
    let dir = std::env::temp_dir().join("bighouse-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("custom.json");

    let workload = Workload::synthesize(
        "custom-service",
        TaskMoments::new(0.010, 0.012),
        TaskMoments::new(0.004, 0.006),
        99,
    )
    .unwrap();
    workload.save(&path).unwrap();
    let loaded = Workload::load(&path).unwrap();
    assert_eq!(workload, loaded);

    let report = run_serial(&quick(loaded.at_utilization(0.5, 4)), 1).expect("valid config");
    assert!(report.converged);
    let response = report.metric("response_time").unwrap();
    assert!(response.mean >= 0.004 * 0.9, "response below service mean");
    std::fs::remove_file(&path).unwrap();
}

/// Figure 5's headline claim as an assertion: bursty (empirical) arrivals
/// produce a worse tail than exponential arrivals at the same mean load.
#[test]
fn bursty_arrivals_hurt_the_tail() {
    let google = Workload::standard(StandardWorkload::Google);
    let qps = 0.75;
    let cores = 4u32;
    let interarrival_mean = google.service().mean() / (qps * f64::from(cores));

    let mut rng = SimRng::from_seed(3);
    let exp = Exponential::from_mean(interarrival_mean).unwrap();
    let samples: Vec<f64> = (0..200_000)
        .map(|_| exp.sample(&mut rng).max(1e-12))
        .collect();
    let exp_workload = Workload::new(
        "exp",
        Empirical::from_samples(&samples).unwrap(),
        google.service().clone(),
    );

    let config = |w: Workload| {
        ExperimentConfig::new(w)
            .with_cores(cores as usize)
            .with_target_accuracy(0.05)
            .with_max_events(100_000_000)
    };
    let exponential = run_serial(&config(exp_workload), 4).expect("valid config");
    let empirical =
        run_serial(&config(google.at_utilization(qps, cores)), 4).expect("valid config");
    let p95_exp = exponential.quantile("response_time", 0.95).unwrap();
    let p95_emp = empirical.quantile("response_time", 0.95).unwrap();
    assert!(
        p95_emp > p95_exp * 0.95,
        "empirical tail ({p95_emp}) should not beat exponential ({p95_exp}) meaningfully"
    );
}

/// DreamWeaver end to end: compared with always-on at the same load, it
/// must deliver strictly more full-system idleness at strictly higher p99.
#[test]
fn dreamweaver_trades_latency_for_idleness() {
    let workload = Workload::standard(StandardWorkload::Google);
    let base = ExperimentConfig::new(workload.at_utilization(0.3, 16))
        .with_cores(16)
        .with_quantile(0.99)
        .with_target_accuracy(0.1)
        .with_max_events(50_000_000);
    let always_on = run_serial(&base, 5).expect("valid config");

    let dw = base.clone().with_idle_policy(IdlePolicy::DreamWeaver {
        max_delay: 8.0 * workload.service().mean(),
        wake_latency: 0.001,
    });
    let dreamweaver = run_serial(&dw, 5).expect("valid config");

    assert!(
        dreamweaver.cluster.mean_full_idle_fraction
            > always_on.cluster.mean_full_idle_fraction + 0.1,
        "DreamWeaver idleness {} vs always-on {}",
        dreamweaver.cluster.mean_full_idle_fraction,
        always_on.cluster.mean_full_idle_fraction
    );
    let p99_dw = dreamweaver.quantile("response_time", 0.99).unwrap();
    let p99_on = always_on.quantile("response_time", 0.99).unwrap();
    assert!(
        p99_dw > p99_on,
        "DreamWeaver p99 {p99_dw} vs always-on {p99_on}"
    );
}

/// Power capping end to end: a capped cluster must consume less energy per
/// simulated second and exhibit a positive capping level.
#[test]
fn power_capping_reduces_power() {
    let workload = Workload::standard(StandardWorkload::Web);
    let model = LinearPowerModel::typical_server();
    let servers = 8;

    let uncapped_config = quick(workload.at_utilization(0.6, 4))
        .with_servers(servers)
        .with_power_model(model);
    let uncapped = run_serial(&uncapped_config, 6).expect("valid config");

    let capper = PowerCapper::new(
        model,
        DvfsModel::new(0.9),
        model.peak_watts() * servers as f64 * 0.6,
    );
    let capped_config = quick(workload.at_utilization(0.6, 4))
        .with_servers(servers)
        .with_capper(capper)
        .with_metric_spec(
            MetricKind::CappingLevel,
            MetricSpec::new("capping_level")
                .with_target_accuracy(0.15)
                .with_warmup(100)
                .with_calibration(500)
                .with_max_lag(8),
        );
    let capped = run_serial(&capped_config, 6).expect("valid config");

    assert!(
        capped.cluster.average_power_watts < uncapped.cluster.average_power_watts,
        "capped {} W vs uncapped {} W",
        capped.cluster.average_power_watts,
        uncapped.cluster.average_power_watts
    );
    assert!(capped.metric("capping_level").unwrap().mean > 0.0);
    let p95_capped = capped.quantile("response_time", 0.95).unwrap();
    let p95_uncapped = uncapped.quantile("response_time", 0.95).unwrap();
    assert!(
        p95_capped > p95_uncapped,
        "throttling must cost latency: {p95_capped} vs {p95_uncapped}"
    );
}

/// The parallel runner agrees with a tight serial reference on a standard
/// workload (the Figure 3 protocol end to end, via the umbrella crate).
#[test]
fn parallel_protocol_end_to_end() {
    let workload = Workload::standard(StandardWorkload::Dns);
    let config = ExperimentConfig::new(workload.at_utilization(0.5, 4))
        .with_target_accuracy(0.05)
        .with_warmup(100)
        .with_calibration(1000)
        .with_max_events(50_000_000);
    let reference =
        run_serial(&config.clone().with_target_accuracy(0.01), 7).expect("valid config");
    let outcome = ParallelRunner::new(config, 4).run(7).expect("valid config");
    assert!(outcome.converged);
    let r = reference.metric("response_time").unwrap().mean;
    let p = outcome.metric("response_time").unwrap().mean;
    let err = (r - p).abs() / r;
    assert!(err < 0.1, "parallel {p} vs reference {r} (err {err})");
}

/// Determinism across the whole stack: identical seeds give identical
/// reports (modulo wall-clock).
#[test]
fn full_stack_determinism() {
    let config = quick(Workload::standard(StandardWorkload::Mail).at_utilization(0.5, 4));
    let a = run_serial(&config, 8).expect("valid config");
    let b = run_serial(&config, 8).expect("valid config");
    assert_eq!(a.estimates, b.estimates);
    assert_eq!(a.events_fired, b.events_fired);
    assert_eq!(a.simulated_seconds, b.simulated_seconds);
    assert_eq!(a.cluster, b.cluster);
}

/// All five Table 1 workloads run to convergence through the public API.
#[test]
fn all_standard_workloads_simulate() {
    for which in StandardWorkload::ALL {
        let workload = Workload::standard(which);
        let report = run_serial(&quick(workload.at_utilization(0.4, 4)), 9).expect("valid config");
        assert!(report.converged, "{which} did not converge");
        assert!(
            report.metric("response_time").unwrap().mean > 0.0,
            "{which} produced nonsense"
        );
    }
}
