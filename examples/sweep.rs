//! Fault-tolerant experiment sweeps: run a whole utilization grid on a
//! work-stealing pool, survive a mid-flight kill, and resume to the
//! identical aggregate report.
//!
//! The paper's methodology is never one experiment — it is *curves*:
//! response time vs. load, power vs. capping budget. `run_sweep` turns a
//! list of `(id, config)` entries into one supervised batch: every config
//! gets a deterministic seed derived from its id, panics are contained,
//! configs that keep failing are quarantined instead of sinking the
//! sweep, and with a checkpoint directory the completed-config ledger
//! survives a SIGKILL.
//!
//! Run with: `cargo run --release --example sweep`

use std::time::Duration;

use bighouse::prelude::*;

fn grid() -> Vec<SweepEntry> {
    [0.2, 0.35, 0.5, 0.65, 0.8]
        .into_iter()
        .map(|u| {
            let config = ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
                .with_cores(4)
                .with_utilization(u)
                .with_target_accuracy(0.1)
                .with_warmup(200)
                .with_calibration(1_000);
            SweepEntry::new(format!("utilization={u}"), config)
        })
        .collect()
}

fn main() {
    let master_seed = 2012;
    let dir = std::env::temp_dir().join(format!("bighouse-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The uninterrupted reference sweep.
    let opts = SweepOptions {
        epoch_events: 50_000,
        deadline: Some(Duration::from_secs(120)),
        ..SweepOptions::default()
    };
    let reference = run_sweep(&grid(), master_seed, &opts).expect("valid grid");
    println!(
        "response time vs. load ({} workers):",
        reference.runtime.workers
    );
    for outcome in &reference.completed {
        let mean = outcome.report.metric("response_time").unwrap().mean;
        println!(
            "  {:<18} seed {:>20}  mean {:>7.3} ms  ({} events)",
            outcome.id,
            outcome.seed,
            mean * 1e3,
            outcome.report.events_fired,
        );
    }

    // The same sweep, checkpointed and stopped after two decided configs —
    // standing in for a SIGKILL or preemption mid-batch.
    let partial = run_sweep(
        &grid(),
        master_seed,
        &SweepOptions {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            max_decided: Some(2),
            ..opts.clone()
        },
    )
    .expect("valid grid");
    println!(
        "\ninterrupted after {} configs; ledger in {}",
        partial.completed.len(),
        dir.display(),
    );

    // A "fresh process" resumes the sweep: already-decided configs come
    // back from the ledger, the rest are simulated.
    let resumed = run_sweep(
        &grid(),
        master_seed,
        &SweepOptions {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            ..opts.clone()
        },
    )
    .expect("resume from ledger");
    println!(
        "resumed: {} completed ({} from the ledger), {} quarantined",
        resumed.completed.len(),
        resumed.runtime.resumed,
        resumed.quarantined.len(),
    );

    // The aggregate result is identical, however the sweep was scheduled
    // or interrupted: trajectories depend only on (config, derived seed).
    let canonical = |r: &SweepReport| serde_json::to_string(&r.canonical()).unwrap();
    assert_eq!(
        canonical(&reference),
        canonical(&resumed),
        "killed-and-resumed sweep must match the uninterrupted one"
    );
    println!("\nkill-and-resume matched the uninterrupted sweep bit for bit.");

    let _ = std::fs::remove_dir_all(&dir);
}
