//! The Figure 1 flow, end to end: characterize → model → simulate.
//!
//! BigHouse's methodology has two independent steps (Fig. 1): (a)
//! *characterize* a live system — instrument it to log task arrival and
//! completion times, then reduce the log to inter-arrival and service
//! distributions — and (b) *simulate* new designs from those compact
//! models. Lacking a production service to instrument, this example plays
//! the role of the live system with a trace replay, "logs" its per-request
//! timings, builds empirical distributions from the log, persists them as
//! a workload file, and then answers a provisioning question the original
//! system could not: how would the measured traffic behave on 1, 2 or 4
//! consolidated servers?
//!
//! Run with: `cargo run --release --example workload_characterization`

use bighouse::prelude::*;
use bighouse::sim::Trace;

fn main() {
    // ---- The "live system" we get to observe -------------------------
    // (In reality: a departmental mail server under live traffic.)
    let hidden_truth = Workload::standard(StandardWorkload::Mail).at_utilization(0.4, 4);
    let observed = Trace::synthesize(&hidden_truth, 150_000, 7);
    println!(
        "instrumented the live system: logged {} requests over {:.0} s",
        observed.len(),
        observed.duration()
    );

    // ---- Offline characterization (Fig. 1, left box) ------------------
    // Derive the two distributions from the raw log.
    let mut interarrivals = Vec::with_capacity(observed.len() - 1);
    for pair in observed.entries().windows(2) {
        interarrivals.push((pair[1].arrival - pair[0].arrival).max(1e-12));
    }
    let sizes: Vec<f64> = observed.entries().iter().map(|e| e.size).collect();
    let workload = Workload::new(
        "characterized-mail",
        Empirical::from_samples(&interarrivals).expect("non-empty log"),
        Empirical::from_samples(&sizes).expect("non-empty log"),
    );
    println!(
        "characterized: inter-arrival mean {:.1} ms (Cv {:.1}), service mean {:.1} ms (Cv {:.1})",
        workload.interarrival().mean() * 1e3,
        workload.interarrival().cv(),
        workload.service().mean() * 1e3,
        workload.service().cv(),
    );

    // The model file is tiny and shareable — the paper's dissemination
    // argument (§2.2): distributions carry no proprietary payload.
    let path = std::env::temp_dir().join("characterized-mail.json");
    workload.save(&path).expect("writable temp dir");
    let bytes = std::fs::metadata(&path).expect("just written").len();
    println!("saved workload model: {bytes} bytes at {}", path.display());

    // Sanity: the characterized model matches the hidden truth's moments.
    let svc_err = (workload.service().mean() - hidden_truth.service().mean()).abs()
        / hidden_truth.service().mean();
    assert!(svc_err < 0.05, "characterization drifted: {svc_err}");

    // ---- Simulation (Fig. 1, right box) -------------------------------
    // A consolidation study: the measured traffic on fewer, bigger boxes.
    let loaded = Workload::load(&path).expect("round-trip");
    println!();
    println!(
        "{:>20} {:>12} {:>12} {:>10}",
        "configuration", "mean (ms)", "p95 (ms)", "util (%)"
    );
    for (servers, cores) in [(4usize, 4usize), (2, 8), (1, 16)] {
        // The measured fleet was 4 servers' worth of traffic; redistribute
        // that same aggregate over `servers` machines (each server's
        // arrival stream carries 4/servers of the measured streams).
        let per_server = loaded
            .with_interarrival_scale(servers as f64 / 4.0)
            .expect("positive scale");
        let config = ExperimentConfig::new(per_server)
            .with_servers(servers)
            .with_cores(cores)
            .with_target_accuracy(0.05)
            .with_max_events(100_000_000);
        let report = run_serial(&config, 3).expect("valid config");
        assert!(report.converged);
        println!(
            "{:>14}x{:<2}cores {:>12.2} {:>12.2} {:>10.1}",
            servers,
            cores,
            report.metric("response_time").unwrap().mean * 1e3,
            report.quantile("response_time", 0.95).unwrap() * 1e3,
            report.cluster.mean_utilization * 100.0,
        );
    }
    println!();
    println!("Consolidating the measured traffic onto fewer, larger servers improves");
    println!("latency at equal total cores (pooling), exactly the kind of provisioning");
    println!("question BigHouse was built to answer without touching production.");
    std::fs::remove_file(&path).ok();
}
