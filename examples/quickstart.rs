//! Quickstart: the canonical BigHouse flow in ~40 lines.
//!
//! Simulates a departmental web server (the "Web" workload of Table 1) at a
//! range of loads and reports mean / 95th-percentile response time with
//! statistical confidence — the simulation stops by itself once every
//! metric reaches ±5% at 95% confidence.
//!
//! Run with: `cargo run --release --example quickstart`

use bighouse::prelude::*;

fn main() {
    let workload = Workload::standard(StandardWorkload::Web);
    println!(
        "Workload `{}`: inter-arrival mean {:.0} ms, service mean {:.0} ms (Cv = {:.1})",
        workload.name(),
        workload.interarrival().mean() * 1e3,
        workload.service().mean() * 1e3,
        workload.service().cv(),
    );
    println!();
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12} {:>8}",
        "load", "mean (ms)", "p95 (ms)", "E (%)", "events", "lag"
    );

    for load in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let config = ExperimentConfig::new(workload.clone())
            .with_cores(4)
            .with_utilization(load)
            .with_target_accuracy(0.05)
            .with_confidence(0.95);
        let report = run_serial(&config, 42).expect("valid config");
        let response = report.metric("response_time").expect("always tracked");
        let p95 = report
            .quantile("response_time", 0.95)
            .expect("p95 is tracked by default");
        println!(
            "{:>5.0}% {:>12.2} {:>12.2} {:>10.2} {:>12} {:>8}",
            load * 100.0,
            response.mean * 1e3,
            p95 * 1e3,
            response.relative_accuracy * 100.0,
            report.events_fired,
            response.lag,
        );
        assert!(report.converged, "simulation should converge at every load");
    }

    println!();
    println!("Each row converged on its own (Figure 2's phase sequence: warm-up,");
    println!("runs-up calibration, lag-spaced measurement, CLT convergence).");
}
