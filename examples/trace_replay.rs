//! Trace replay vs statistical simulation.
//!
//! §2.2 of the paper discusses the trade-off: replaying a trace directly
//! "eliminates some sampling difficulties, such as sample auto-correlation"
//! but gives no statistically rigorous estimate of a *different* system
//! than the one traced. This example shows both modes on the same
//! workload: a trace synthesized from the Web model replayed exactly, next
//! to the converged statistical estimate, and then the same trace replayed
//! on modified hardware (half the cores) — the what-if that replay answers
//! per-trace and statistical simulation answers in distribution.
//!
//! Run with: `cargo run --release --example trace_replay`

use bighouse::prelude::*;
use bighouse::sim::{replay_trace, Trace};

fn main() {
    let workload = Workload::standard(StandardWorkload::Web).at_utilization(0.5, 4);

    // "Instrument the live system": synthesize a 200k-request trace.
    let trace = Trace::synthesize(&workload, 200_000, 2012);
    println!(
        "trace: {} requests over {:.0} simulated seconds",
        trace.len(),
        trace.duration()
    );

    // Mode 1: exact replay on the as-measured 4-core server.
    let replay = replay_trace(&trace, 1, 4, IdlePolicy::AlwaysOn, 1);
    println!();
    println!(
        "replay (4 cores):       mean {:>8.2} ms   p95 {:>8.2} ms   p99 {:>8.2} ms",
        replay.response.mean() * 1e3,
        replay.quantile(0.95).unwrap() * 1e3,
        replay.quantile(0.99).unwrap() * 1e3,
    );

    // Mode 2: statistical simulation of the same workload, to convergence.
    let config = ExperimentConfig::new(workload)
        .with_cores(4)
        .with_target_accuracy(0.02)
        .with_quantile(0.95)
        .with_max_events(100_000_000);
    let stat = run_serial(&config, 7).expect("valid config");
    let est = stat.metric("response_time").unwrap();
    println!(
        "statistical (4 cores):  mean {:>8.2} ms   p95 {:>8.2} ms   (converged, E = {:.1}%)",
        est.mean * 1e3,
        stat.quantile("response_time", 0.95).unwrap() * 1e3,
        est.relative_accuracy * 100.0,
    );

    let agreement = (replay.response.mean() - est.mean).abs() / est.mean;
    println!("agreement on the mean: {:.1}%", agreement * 100.0);
    assert!(agreement < 0.15, "modes should agree on the same system");

    // What-if: replay the identical trace on a smaller, 3-core server.
    let degraded = replay_trace(&trace, 1, 3, IdlePolicy::AlwaysOn, 1);
    println!();
    println!(
        "replay (3 cores):       mean {:>8.2} ms   p95 {:>8.2} ms   p99 {:>8.2} ms",
        degraded.response.mean() * 1e3,
        degraded.quantile(0.95).unwrap() * 1e3,
        degraded.quantile(0.99).unwrap() * 1e3,
    );
    println!();
    println!("Dropping to 3 cores raises per-server load to ~67%; the identical request");
    println!("sequence now queues heavily — the per-trace what-if replay answers, with");
    println!("the caveat (paper, §2.2) that it carries no confidence statement.");
}
