//! The §4.1 demonstration: cluster-wide dynamic power capping.
//!
//! A cluster is provisioned for less power than the sum of its servers'
//! peaks. Every second, a global coordinator re-budgets each server in
//! proportion to its previous-epoch utilization, and servers over budget
//! are throttled with idealized DVFS (cubic power, Eqs. 4–6). This is the
//! paper's example of a *global* model — all servers interact through the
//! coordinator each simulated second — and the system behind Figures 7, 9
//! and 10.
//!
//! The capping level is observed once per epoch (cluster total), so it is
//! a *rare* metric: accumulating its sample costs far more simulated time
//! than the response-time metric needs — the Figure 9 "+Capping" effect.
//!
//! Run with: `cargo run --release --example power_capping`

use bighouse::prelude::*;

fn main() {
    let workload = Workload::standard(StandardWorkload::Web);
    let servers = 16;
    let cores = 4;
    let load = 0.5;
    let model = LinearPowerModel::typical_server();

    println!(
        "{} quad-core servers at {:.0}% load; peak draw {:.0} W each",
        servers,
        load * 100.0,
        model.peak_watts()
    );
    println!(
        "{:>18} {:>12} {:>18} {:>16} {:>12} {:>10}",
        "budget (% peak)", "p95 (ms)", "cluster cap (W)", "avg power (W)", "events", "converged"
    );

    for budget_fraction in [0.9, 0.8, 0.7, 0.6] {
        let total_budget = model.peak_watts() * servers as f64 * budget_fraction;
        let capper = PowerCapper::new(model, DvfsModel::new(0.9), total_budget);
        let config = ExperimentConfig::new(workload.at_utilization(load, cores as u32))
            .with_servers(servers)
            .with_cores(cores)
            .with_capper(capper)
            // The epoch-paced capping metric gets looser targets: one
            // observation per simulated second is expensive to accumulate.
            .with_metric_spec(
                MetricKind::CappingLevel,
                MetricSpec::new("capping_level")
                    .with_target_accuracy(0.10)
                    .with_warmup(200)
                    .with_calibration(1000),
            )
            .with_target_accuracy(0.05)
            .with_max_events(30_000_000);
        let report = run_serial(&config, 13).expect("valid config");
        let p95 = report.quantile("response_time", 0.95).unwrap();
        let capping = report.metric("capping_level").unwrap();
        println!(
            "{:>17.0}% {:>12.2} {:>18.2} {:>16.1} {:>12} {:>10}",
            budget_fraction * 100.0,
            p95 * 1e3,
            capping.mean,
            report.cluster.average_power_watts,
            report.events_fired,
            report.converged,
        );
    }

    println!();
    println!("Tighter budgets raise the observed capping level and the latency cost");
    println!("of throttling, while holding the cluster under its provisioned power.");
}
