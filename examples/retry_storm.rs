//! Metastable retry storm: an overload ramp that outlives its cause, and
//! the admission control that prevents it.
//!
//! A 4-core web server runs at a comfortable 40% load, but its clients
//! time out and retry — and when a client gives up on an attempt the
//! server never hears about it, so the abandoned attempt keeps burning a
//! core as *zombie work* while the retry arrives as fresh load. A 5×
//! traffic ramp pushes waits past the timeout; from then on every
//! admitted request amplifies into up to six server jobs of which at
//! most one is useful, and the cluster stays congested long after the
//! ramp ends. That is the metastable failure mode of real serving
//! systems: the overload is gone, the goodput is not coming back.
//!
//! The same scenario behind a 12-slot bounded queue sheds the excess at
//! the front door instead of queueing it, and goodput snaps back to the
//! pre-ramp baseline within a couple of service times of the ramp end.
//!
//! Run with: `cargo run --release --example retry_storm`

use std::collections::HashMap;

use bighouse::prelude::*;

/// Advances an engine until simulated time reaches `t` seconds.
fn drive_to(engine: &mut Engine<ClusterSim>, t: f64) {
    while engine.now().as_seconds() < t {
        let stats = engine.run_with_limit(32);
        assert!(stats.events_fired > 0, "calendar drained early");
    }
}

/// Resilience ledger at the engine's current simulated time.
fn ledger(engine: &Engine<ClusterSim>) -> ResilienceSummary {
    let now = engine.now();
    engine
        .simulation()
        .summary(now)
        .resilience
        .expect("resilience mode on")
}

fn main() {
    let base = ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_cores(4)
        .with_utilization(0.4);
    let ia = base.workload().interarrival().mean();
    let svc = base.workload().service().mean();
    let ramp_start = 2_500.0 * ia;
    let ramp_duration = 1_500.0 * ia;
    let ramp_end = ramp_start + ramp_duration;
    let timeout = 20.0 * svc;

    let scenario = |admission: Option<AdmissionPolicy>| {
        let mut resilience = ResilienceConfig::new().with_ramp(ramp_start, ramp_duration, 5.0);
        if let Some(policy) = admission {
            resilience = resilience.with_admission(policy);
        }
        base.clone()
            .with_retry(
                RetryPolicy::new(timeout)
                    .with_max_retries(5)
                    .with_cancel_on_timeout(false),
            )
            .with_resilience(resilience)
    };
    let engine_for = |config: ExperimentConfig| {
        let mut sim = ClusterSim::new_slave(config, 31, &HashMap::new()).expect("valid config");
        let mut cal = Calendar::new();
        sim.prime(&mut cal);
        Engine::from_parts(sim, cal)
    };
    let mut unprotected = engine_for(scenario(None));
    let mut protected = engine_for(scenario(Some(AdmissionPolicy::BoundedQueue {
        capacity: 12,
    })));

    println!("Metastable retry storm: 4-core web server @ 40% load, timeout 20x mean");
    println!("service, 5 retries, abandoned attempts finish as zombie work.");
    println!("Overload ramp: 5x offered load over t = {ramp_start:.1} s .. {ramp_end:.1} s.");
    println!();
    println!(
        "{:>16}  {:>14} {:>14} {:>10}  {:<8}",
        "window (s)", "unprot gp/s", "admctl gp/s", "shed", "phase"
    );

    let window = 250.0 * ia;
    let end = ramp_end + 1_000.0 * ia;
    let mut t = window;
    let mut prev_u = 0u64;
    let mut prev_p = ledger(&protected);
    while t <= end + 1e-9 {
        drive_to(&mut unprotected, t);
        drive_to(&mut protected, t);
        let u = ledger(&unprotected);
        let p = ledger(&protected);
        let phase = if t <= ramp_start {
            "baseline"
        } else if t - window < ramp_end {
            "RAMP"
        } else {
            "recovery"
        };
        println!(
            "{:>7.1} ..{:>6.1}  {:>14.1} {:>14.1} {:>10}  {:<8}",
            t - window,
            t,
            (u.goodput - prev_u) as f64 / window,
            (p.goodput - prev_p.goodput) as f64 / window,
            p.shed - prev_p.shed,
            phase
        );
        prev_u = u.goodput;
        prev_p = p;
        t += window;
    }

    let u = ledger(&unprotected);
    let p = ledger(&protected);
    assert_eq!(u.admitted + u.shed, u.offered, "ledger out of balance");
    assert_eq!(u.goodput + u.timed_out + u.in_flight_at_end, u.admitted);
    assert_eq!(p.admitted + p.shed, p.offered, "ledger out of balance");
    assert_eq!(p.goodput + p.timed_out + p.in_flight_at_end, p.admitted);

    println!();
    println!(
        "Final ledgers — unprotected: {} offered, {} goodput, {} timed out, {} in flight;",
        u.offered, u.goodput, u.timed_out, u.in_flight_at_end
    );
    println!(
        "                protected:   {} offered, {} goodput, {} timed out, {} shed.",
        p.offered, p.goodput, p.timed_out, p.shed
    );
    println!();
    println!("Expected: both variants track each other during the baseline. After the ramp");
    println!("ends the unprotected server never recovers — retry amplification keeps offered");
    println!("*work* above capacity even though offered *load* is back to 40% (metastability).");
    println!("The bounded queue sheds during the ramp and restores full goodput right after.");
}
