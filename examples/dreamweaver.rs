//! Case study 2 (§3.2): DreamWeaver — scheduling for idleness.
//!
//! Reproduces the simulation side of Figure 6: a many-core search server
//! running the DreamWeaver scheduler, which preempts execution and naps
//! whenever there are fewer outstanding tasks than cores, waking when any
//! task has been delayed past a threshold. Sweeping that threshold traces
//! the latency-vs-idleness trade-off curve: the longer requests may be
//! delayed, the more full-system idleness can be coalesced (and turned into
//! deep-sleep power savings by a PowerNap-class mechanism).
//!
//! Run with: `cargo run --release --example dreamweaver`

use bighouse::prelude::*;

fn main() {
    // A search-like workload (Google moments from Table 1; the paper's own
    // validation used Solr — see DESIGN.md substitution 4), on a 16-core
    // server at 30% load, where naive per-core idleness is plentiful but
    // *full-system* idleness is almost nonexistent.
    let workload = Workload::standard(StandardWorkload::Google);
    let cores = 16;
    let load = 0.3;
    let wake_latency = 0.001; // 1 ms PowerNap-class transition
    let service_mean = workload.service().mean();

    println!(
        "DreamWeaver threshold sweep: 16-core search node at {:.0}% load",
        load * 100.0
    );
    println!(
        "{:>16} {:>14} {:>14} {:>12}",
        "max delay", "p99 (ms)", "idle time (%)", "nap time (%)"
    );

    // Baseline: no sleeping at all.
    let base_config = ExperimentConfig::new(workload.at_utilization(load, cores as u32))
        .with_cores(cores)
        .with_quantile(0.99)
        .with_target_accuracy(0.05);
    let base = run_serial(&base_config, 5).expect("valid config");
    println!(
        "{:>16} {:>14.2} {:>14.1} {:>12.1}",
        "always-on",
        base.quantile("response_time", 0.99).unwrap() * 1e3,
        base.cluster.mean_full_idle_fraction * 100.0,
        base.cluster.mean_nap_fraction * 100.0,
    );

    // Sweep the delay threshold as multiples of the mean service time —
    // the knob of Figure 6.
    let mut last_idle = -1.0;
    for multiple in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let max_delay = multiple * service_mean;
        let config = ExperimentConfig::new(workload.at_utilization(load, cores as u32))
            .with_cores(cores)
            .with_idle_policy(IdlePolicy::DreamWeaver {
                max_delay,
                wake_latency,
            })
            .with_quantile(0.99)
            .with_target_accuracy(0.05);
        let report = run_serial(&config, 5).expect("valid config");
        let p99 = report.quantile("response_time", 0.99).unwrap();
        let idle = report.cluster.mean_full_idle_fraction;
        println!(
            "{:>13.1} ms {:>14.2} {:>14.1} {:>12.1}",
            max_delay * 1e3,
            p99 * 1e3,
            idle * 100.0,
            report.cluster.mean_nap_fraction * 100.0,
        );
        // Idleness grows with the threshold until it saturates; past
        // saturation the curve may wobble a little (deep batches drain with
        // partially filled cores), so allow slack around the plateau.
        assert!(
            idle >= last_idle - 0.05,
            "idleness should grow (weakly) with the delay threshold"
        );
        assert!(
            idle > base.cluster.mean_full_idle_fraction,
            "DreamWeaver must beat always-on idleness"
        );
        last_idle = idle;
    }

    println!();
    println!("Reading the table as Figure 6: moving down the rows trades 99th-percentile");
    println!("latency (left) for coalesced full-system idleness (right).");
}
