//! Multi-tier extension: a three-tier web service.
//!
//! The paper notes its sample workloads "all model simple client-server
//! round-trip interactions" and that "the BigHouse object model must be
//! extended if a user wishes to model … all three tiers of a three-tier
//! web service" (§2.2). This example exercises exactly that extension: a
//! web → application → database pipeline, with per-tier residence times
//! and end-to-end latency, swept over offered load to find the bottleneck.
//!
//! Run with: `cargo run --release --example three_tier`

use bighouse::prelude::*;
use bighouse::sim::{run_multi_tier, MultiTierConfig, TierConfig};

fn empirical(mean: f64, cv: f64, seed: u64) -> Empirical {
    let dist = fit_mean_cv(mean, cv).expect("fittable moments");
    let mut rng = SimRng::from_seed(seed);
    let samples: Vec<f64> = (0..100_000)
        .map(|_| dist.sample(&mut rng).max(1e-12))
        .collect();
    Empirical::from_samples(&samples).expect("non-empty")
}

fn main() {
    // Tier capacities: web 2×2/2ms = 2000/s, app 2×4/10ms = 800/s,
    // db 1×8/15ms ≈ 533/s — the database is the bottleneck by design.
    let tiers = || {
        vec![
            TierConfig::new("web", 2, 2, empirical(0.002, 1.5, 1)),
            TierConfig::new("app", 2, 4, empirical(0.010, 2.0, 2)),
            TierConfig::new("db", 1, 8, empirical(0.015, 1.2, 3)),
        ]
    };

    println!("Three-tier service: web (2x2c, 2ms) -> app (2x4c, 10ms) -> db (1x8c, 15ms)");
    println!("db tier capacity ~533 req/s is the designed bottleneck");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "req/s", "e2e p95(ms)", "e2e mean", "web (ms)", "app (ms)", "db (ms)"
    );

    for rate in [100.0, 200.0, 300.0, 400.0, 450.0] {
        let config = MultiTierConfig::new(empirical(1.0 / rate, 1.0, 4), tiers())
            .with_target_accuracy(0.05)
            .with_warmup(500)
            .with_calibration(2000)
            .with_max_events(100_000_000);
        let report = run_multi_tier(&config, 11);
        assert!(
            report.converged,
            "three-tier run should converge at {rate} req/s"
        );
        let mean = |name: &str| report.metric(name).unwrap().mean * 1e3;
        println!(
            "{:>8.0} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            rate,
            report.quantile("response_time", 0.95).unwrap() * 1e3,
            mean("response_time"),
            mean("tier_web_response"),
            mean("tier_app_response"),
            mean("tier_db_response"),
        );
    }

    println!();
    println!("As offered load approaches the db tier's capacity, its residence time —");
    println!("and therefore the end-to-end tail — dominates, while the overprovisioned");
    println!("web tier stays flat.");
}
