//! Resumable runs: checkpoint a simulation, "kill" it mid-flight, and
//! resume it from disk with bit-identical final estimates.
//!
//! Long convergence runs (tight accuracy targets, high quantiles, rare
//! events) can take hours; a crash or preemption should not throw that
//! work away. `run_resumable` structures the run into epochs, snapshots
//! the calendar-free inter-epoch state atomically, and — because the
//! trajectory depends only on (config, master seed, epoch size) — a
//! resumed run lands on exactly the same estimates as an uninterrupted
//! one.
//!
//! Run with: `cargo run --release --example resumable_run`
//!
//! Set `BIGHOUSE_PARANOID=1` to arm the runtime invariant auditor on all
//! three runs; kill-and-resume stays bit-identical with auditing on.

use bighouse::prelude::*;

fn main() {
    let config = ExperimentConfig::new(Workload::standard(StandardWorkload::Web))
        .with_cores(4)
        .with_utilization(0.5)
        .with_target_accuracy(0.05);
    let seed = 2012;
    let epoch_events = 100_000;
    let paranoid = std::env::var_os("BIGHOUSE_PARANOID").is_some();
    if paranoid {
        println!("(paranoid mode: runtime invariant auditor armed)");
    }

    // The uninterrupted reference.
    let reference = run_resumable(
        &config,
        seed,
        &RunOptions {
            epoch_events,
            audit: paranoid.then(AuditConfig::default),
            ..RunOptions::default()
        },
    )
    .expect("valid config");
    println!(
        "reference:  {} events, mean {:.3} ms ({})",
        reference.events_fired,
        reference.metric("response_time").unwrap().mean * 1e3,
        reference.termination,
    );

    // The same run, checkpointed and stopped after two epochs — standing in
    // for a SIGKILL, OOM, or node preemption at an arbitrary point.
    let dir = std::env::temp_dir().join(format!("bighouse-resumable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let partial = run_resumable(
        &config,
        seed,
        &RunOptions {
            epoch_events,
            checkpoint: Some(CheckpointConfig::new(&dir)),
            max_epochs: Some(2),
            audit: paranoid.then(AuditConfig::default),
            ..RunOptions::default()
        },
    )
    .expect("valid config");
    println!(
        "interrupted: {} events after 2 epochs ({}); snapshot in {}",
        partial.events_fired,
        partial.termination,
        dir.display(),
    );

    // A "fresh process" picks the snapshot up and finishes the job. On the
    // command line this is `bighouse run ... checkpoint-dir=DIR --resume`.
    let resumed = run_resumable(
        &config,
        seed,
        &RunOptions {
            epoch_events,
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            audit: paranoid.then(AuditConfig::default),
            ..RunOptions::default()
        },
    )
    .expect("resume from checkpoint");
    println!(
        "resumed:    {} events, mean {:.3} ms ({})",
        resumed.events_fired,
        resumed.metric("response_time").unwrap().mean * 1e3,
        resumed.termination,
    );

    if let Some(audit) = &reference.audit {
        assert!(
            audit.passed(),
            "auditor flagged a healthy run: {:?}",
            audit.violations
        );
    }
    assert_eq!(reference.events_fired, resumed.events_fired);
    assert_eq!(
        reference.metric("response_time").unwrap().mean.to_bits(),
        resumed.metric("response_time").unwrap().mean.to_bits(),
    );
    println!();
    println!("kill-and-resume matched the uninterrupted run bit for bit.");

    let _ = std::fs::remove_dir_all(&dir);
}
