//! Fault injection: a load-balanced cluster whose servers fail and get
//! repaired, with request timeouts and retry.
//!
//! Sweeps the MTBF of a 16-server cluster and reports the measured
//! availability against the alternating-renewal prediction
//! MTBF / (MTBF + MTTR), plus the request-accounting ledger: every admitted
//! request ends as goodput, a timeout drop, or in flight at the end.
//!
//! Run with: `cargo run --release --example faulty_cluster`
//!
//! Set `BIGHOUSE_PARANOID=1` to run the same sweep with the runtime
//! invariant auditor armed: conservation sweeps, NaN tripwires, and
//! livelock breakers, with bit-identical results.

use bighouse::prelude::*;

fn main() {
    let workload = Workload::standard(StandardWorkload::Web);
    let service_mean = workload.service().mean();
    let mttr = 2.0;
    let paranoid = std::env::var_os("BIGHOUSE_PARANOID").is_some();
    if paranoid {
        println!("(paranoid mode: runtime invariant auditor armed)");
    }

    println!("Fault injection: 16-server JSQ cluster, Web workload @ 50% load, MTTR {mttr} s");
    println!("Timeout = 20x mean service time, up to 3 retries with jittered backoff.");
    println!();
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "MTBF (s)",
        "predicted",
        "measured",
        "failures",
        "admitted",
        "goodput",
        "timeout",
        "retries"
    );

    for mtbf in [10.0, 30.0, 100.0, 300.0] {
        let faults = FaultProcess::exponential(mtbf, mttr).unwrap();
        let predicted = faults.availability();
        // One central arrival stream must carry all 16 servers: compress
        // the per-server 50%-load stream's inter-arrivals by 16x.
        let cluster_stream = workload
            .at_utilization(0.5, 4)
            .with_interarrival_scale(1.0 / 16.0)
            .expect("positive scale");
        let config = ExperimentConfig::new(cluster_stream)
            .with_servers(16)
            .with_cores(4)
            .with_arrival_mode(ArrivalMode::LoadBalanced(BalancerPolicy::JoinShortestQueue))
            .with_faults(faults)
            .with_retry(RetryPolicy::new(service_mean * 20.0).with_max_retries(3))
            .with_metric(MetricKind::Availability)
            .with_target_accuracy(0.05)
            .with_max_events(200_000_000);
        let config = if paranoid {
            config.with_audit(AuditConfig::default())
        } else {
            config
        };
        let report = run_serial(&config, 2012).expect("valid config");
        if let Some(audit) = &report.audit {
            assert!(
                audit.passed(),
                "auditor flagged a healthy run: {:?}",
                audit.violations
            );
        }
        let availability = report.metric("availability").expect("tracked");
        let fs = report.cluster.faults.expect("fault mode on");
        assert_eq!(
            fs.goodput + fs.timed_out + fs.in_flight_at_end,
            fs.admitted,
            "request conservation violated"
        );
        println!(
            "{:>9.0} {:>10.4} {:>10.4} {:>10} {:>10} {:>10} {:>9} {:>9}",
            mtbf,
            predicted,
            availability.mean,
            fs.server_failures,
            fs.admitted,
            fs.goodput,
            fs.timed_out,
            fs.retries,
        );
    }

    println!();
    println!("Expected: measured availability tracks MTBF/(MTBF+MTTR); as MTBF grows,");
    println!("failures (and the retries they trigger) fade, and goodput approaches the");
    println!("admitted count with nothing lost to timeouts.");
}
