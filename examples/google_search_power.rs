//! Case study 1 (§3.1): power management for Google Web search.
//!
//! Reproduces the *simulation* side of Figures 4 and 5:
//!
//! - Figure 4: 95th-percentile latency vs load (QPS as % of peak) for CPU
//!   slowdown factors S_CPU ∈ {1.0, 1.1, 1.3, 1.6, 2.0}. Slower processor
//!   settings stretch the service distribution, and the latency penalty
//!   explodes as load grows.
//! - Figure 5: the inter-arrival distribution matters — an exponential
//!   arrival assumption (common in pen-and-paper queueing) and a low-Cv
//!   load-tester-style arrival process both underestimate the tail latency
//!   produced by real, bursty traffic.
//!
//! Run with: `cargo run --release --example google_search_power`

use bighouse::prelude::*;

fn main() {
    let google = Workload::standard(StandardWorkload::Google);
    let cores = 4;

    println!("== Figure 4: latency vs QPS under CPU slowdown (Google search) ==");
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "S_CPU", "QPS(%)", "p95 (ms)", "mean (ms)"
    );
    for s_cpu in [1.0, 1.1, 1.3, 1.6, 2.0] {
        let slowed = google.with_service_scale(s_cpu).expect("positive scale");
        for qps in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
            // QPS% is relative to the *nominal* (unslowed) peak, as in the
            // paper: the same offered load hits a slower server.
            let utilization = qps * s_cpu;
            if utilization >= 0.95 {
                continue; // unstable operating point
            }
            let config =
                ExperimentConfig::new(slowed.clone().at_utilization(utilization, cores as u32))
                    .with_cores(cores)
                    .with_target_accuracy(0.05);
            let report = run_serial(&config, 7).expect("valid config");
            println!(
                "{:>6.1} {:>8.0} {:>12.2} {:>12.2}",
                s_cpu,
                qps * 100.0,
                report.quantile("response_time", 0.95).unwrap() * 1e3,
                report.metric("response_time").unwrap().mean * 1e3,
            );
        }
        println!();
    }

    println!("== Figure 5: arrival-process assumptions vs tail latency ==");
    let service_mean = google.service().mean();
    println!(
        "{:>12} {:>8} {:>24}",
        "arrivals", "QPS(%)", "p95 (normalized to 1/mu)"
    );
    for qps in [0.65, 0.70, 0.75, 0.80] {
        let interarrival_mean = service_mean / (qps * cores as f64);
        // Three arrival processes with identical means, different shapes.
        let scenarios: Vec<(&str, Workload)> = vec![
            ("Low Cv", {
                let erlang = Erlang::from_mean(16, interarrival_mean).unwrap();
                synth_workload("lowcv", &erlang, &google)
            }),
            ("Exponential", {
                let exp = Exponential::from_mean(interarrival_mean).unwrap();
                synth_workload("exp", &exp, &google)
            }),
            ("Empirical", google.at_utilization(qps, cores as u32)),
        ];
        for (name, workload) in scenarios {
            let config = ExperimentConfig::new(workload)
                .with_cores(cores)
                .with_target_accuracy(0.05);
            let report = run_serial(&config, 11).expect("valid config");
            let p95 = report.quantile("response_time", 0.95).unwrap();
            println!(
                "{:>12} {:>8.0} {:>24.2}",
                name,
                qps * 100.0,
                p95 / service_mean
            );
        }
        println!();
    }
    println!("Real (empirical) traffic is burstier than either synthetic assumption,");
    println!("so its tail latency is strictly worse — the paper's Figure 5 lesson.");
}

/// Builds a workload with a synthetic arrival process and the Google
/// service distribution.
fn synth_workload(name: &str, arrivals: &dyn Distribution, base: &Workload) -> Workload {
    let mut rng = SimRng::from_seed(0xF165);
    let samples: Vec<f64> = (0..100_000)
        .map(|_| arrivals.sample(&mut rng).max(1e-12))
        .collect();
    let empirical = Empirical::from_samples(&samples).expect("non-empty");
    Workload::new(name, empirical, base.service().clone())
}
